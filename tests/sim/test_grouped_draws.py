"""Tests pinning the grouped (v3) channel-draw contract.

The contract under test (see ``Network._draw_channels_grouped``):
randomness is consumed scalars-first -- one shadowing draw for every
pair, one line-of-sight draw for every pair, then ONE tap draw per
antenna-shape group -- with no per-pair rng calls at all, and the draw
sequence depends only on the *sorted* station ids.  Any accidental
reordering of those draws changes every seeded v3 result, which is what
the replayed-stream test and the golden-metrics snapshot fail loudly on.
"""

import random

import numpy as np
import pytest

from repro.sim.network import Network
from repro.sim.runner import (
    SimulationConfig,
    build_network,
    effective_channel_draws,
    run_simulation,
)
from repro.sim.scenarios import (
    custom_pairs_scenario,
    dense_lan_scenario,
    scenario_factory,
    three_pair_scenario,
)


def _grouped(scenario, seed, **kwargs):
    return Network(
        scenario.stations,
        scenario.pairs,
        np.random.default_rng(seed),
        n_subcarriers=kwargs.pop("n_subcarriers", 8),
        channel_draws="grouped",
        **kwargs,
    )


def _assert_same_channels(first, second):
    assert set(first.channels.pairs()) == set(second.channels.pairs())
    for a, b in first.channels.pairs():
        assert np.array_equal(first.true_channel(a, b), second.true_channel(a, b)), (a, b)
        assert first.link_snr_db(a, b) == second.link_snr_db(a, b)


class TestGroupedDrawContract:
    def test_rng_stream_layout_is_scalars_first(self):
        """Replay the documented draw sequence by hand; the construction
        must leave the generator in exactly the replayed state."""
        scenario = custom_pairs_scenario([1, 2, 3, 2, 1])
        network = _grouped(scenario, seed=17)

        replay = np.random.default_rng(17)
        stations = sorted(network.stations)
        n = len(stations)
        n_pairs = n * (n - 1) // 2
        replay.choice(network.testbed.n_locations, size=n, replace=False)  # placements
        replay.normal(0.0, network.testbed.shadowing_sigma_db, size=n_pairs)  # shadowing
        replay.random(n_pairs)  # line-of-sight coins
        antennas = np.array([network.stations[s].n_antennas for s in stations])
        ai, bi = np.triu_indices(n, k=1)
        shape_key = antennas[ai] * (antennas.max() + 1) + antennas[bi]
        for key in np.unique(shape_key):
            rows = np.flatnonzero(shape_key == key)
            m = int(antennas[ai[rows[0]]])
            r = int(antennas[bi[rows[0]]])
            replay.standard_normal((rows.size, network.testbed.n_taps, 2, r, m))
        assert network.rng.bit_generator.state == replay.bit_generator.state

    def test_shuffled_station_order_is_deterministic(self):
        """Draws depend on sorted node ids, never on list order."""
        scenario = custom_pairs_scenario([3, 1, 2, 2, 1, 3])
        shuffled = list(scenario.stations)
        random.Random(0).shuffle(shuffled)
        reference = _grouped(scenario, seed=5)
        permuted = Network(
            shuffled,
            scenario.pairs,
            np.random.default_rng(5),
            n_subcarriers=8,
            channel_draws="grouped",
        )
        _assert_same_channels(reference, permuted)
        for node_id in reference.stations:
            assert (
                reference.stations[node_id].location
                == permuted.stations[node_id].location
            )

    def test_shuffled_pair_order_is_deterministic(self):
        """Traffic-pair order shapes the simulation, not the draws --
        and shuffled pairs leave the drawn channels untouched."""
        scenario = custom_pairs_scenario([1, 2, 3, 2])
        shuffled_pairs = list(scenario.pairs)
        random.Random(1).shuffle(shuffled_pairs)
        reference = _grouped(scenario, seed=9)
        permuted = Network(
            scenario.stations,
            shuffled_pairs,
            np.random.default_rng(9),
            n_subcarriers=8,
            channel_draws="grouped",
        )
        _assert_same_channels(reference, permuted)

    def test_forced_link_snrs_are_honoured(self):
        scenario = three_pair_scenario()
        forced = {(0, 1): 12.0, (5, 4): 7.5}
        network = _grouped(scenario, seed=4, forced_link_snrs_db=forced)
        assert network.link_snr_db(0, 1) == 12.0
        assert network.link_snr_db(1, 0) == 12.0
        assert network.link_snr_db(4, 5) == 7.5

    def test_forced_pairs_do_not_shift_the_stream(self):
        """A forced pair draws (and discards) its shadowing, so every
        other pair's channel is unchanged by the forced set."""
        scenario = three_pair_scenario()
        plain = _grouped(scenario, seed=4)
        forced = _grouped(scenario, seed=4, forced_link_snrs_db={(0, 1): 12.0})
        assert np.array_equal(plain.true_channel(2, 3), forced.true_channel(2, 3))
        assert plain.link_snr_db(4, 5) == forced.link_snr_db(4, 5)

    def test_grouped_differs_from_v2_by_design(self):
        """The schema bump exists because the contracts disagree."""
        scenario = three_pair_scenario()
        grouped = _grouped(scenario, seed=6)
        batched = Network(
            scenario.stations,
            scenario.pairs,
            np.random.default_rng(6),
            n_subcarriers=8,
            channel_draws="batched",
        )
        assert not np.array_equal(grouped.true_channel(0, 1), batched.true_channel(0, 1))


class TestGoldenMetricsSnapshot:
    """Seeded v3 results, frozen.  A change here means the grouped draw
    (or estimate-prefetch) order drifted -- which is only legitimate
    alongside another CACHE_SCHEMA_VERSION bump and a refreshed snapshot.
    """

    CONFIG = SimulationConfig(
        duration_us=20_000.0, n_subcarriers=8, channel_draws="grouped"
    )

    def test_three_pair_nplus_snapshot(self):
        metrics = run_simulation(three_pair_scenario(), "n+", seed=42, config=self.CONFIG)
        assert metrics.elapsed_us == pytest.approx(20574.0, rel=1e-9)
        assert metrics.total_throughput_mbps() == pytest.approx(
            29.138524351122776, rel=1e-6
        )
        per_link = {
            name: link.throughput_mbps(metrics.elapsed_us)
            for name, link in metrics.links.items()
        }
        assert per_link["tx1->rx1"] == pytest.approx(4.666083406240887, rel=1e-6)
        assert per_link["tx2->rx2"] == pytest.approx(5.0137066200058324, rel=1e-6)
        assert per_link["tx3->rx3"] == pytest.approx(19.45873432487606, rel=1e-6)


class TestContractResolution:
    def test_config_beats_scenario_hint(self):
        scenario = dense_lan_scenario(n_pairs=3, seed=1, channel_draws="grouped")
        assert effective_channel_draws(scenario, SimulationConfig()) == "grouped"
        override = SimulationConfig(channel_draws="per-pair")
        assert effective_channel_draws(scenario, override) == "per-pair"
        plain = three_pair_scenario()
        assert effective_channel_draws(plain, SimulationConfig()) == "batched"

    def test_build_network_honours_the_contract(self):
        scenario = dense_lan_scenario(n_pairs=3, seed=1, channel_draws="grouped")
        config = SimulationConfig(n_subcarriers=8)
        network = build_network(scenario, run_seed=2, config=config)
        assert network.channel_draws == "grouped"
        forced = build_network(
            scenario, run_seed=2, config=SimulationConfig(n_subcarriers=8, channel_draws="batched")
        )
        assert forced.channel_draws == "batched"


class TestDenseLan500Tier:
    def test_registered_with_grouped_contract(self):
        scenario = scenario_factory("dense-lan-500")()
        assert len(scenario.stations) == 500
        assert len(scenario.pairs) == 250
        assert scenario.channel_draws == "grouped"
        assert scenario.make_testbed().n_locations >= 500
        bursty = scenario_factory("dense-lan-500-bursty")()
        assert bursty.packet_rate_pps == 150.0
        assert bursty.channel_draws == "grouped"

    def test_500_station_network_builds(self):
        """124750 pairs drawn scalars-first; SNRs land in the testbed's
        operating range and reciprocity holds."""
        scenario = scenario_factory("dense-lan-500")()
        config = SimulationConfig(n_subcarriers=4)
        network = build_network(scenario, run_seed=0, config=config)
        assert network.channel_draws == "grouped"
        assert network.channels.n_pairs == 500 * 499 // 2
        testbed = network.testbed
        snrs = np.array(
            [network.link_snr_db(p.transmitter.node_id, p.receivers[0].node_id)
             for p in scenario.pairs]
        )
        assert np.all(snrs >= testbed.min_snr_db) and np.all(snrs <= testbed.max_snr_db)
        forward = network.true_channel(0, 1)
        assert np.shares_memory(forward, network.true_channel(1, 0))
