"""Tests for the SQLite results store (repro.sim.store).

The store replaces the JSON SweepCache behind the same load/store
interface, so these tests pin three contracts: cache parity (done-only
hits, corrupt state as a miss), the cell state machine that makes sweeps
resumable, and the one-shot migration of legacy JSON caches.
"""

import json
import os
import sqlite3

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.metrics import LinkMetrics, NetworkMetrics
from repro.sim.runner import SimulationConfig
from repro.sim.store import (
    CELL_STATES,
    STORE_FILENAME,
    STORE_SCHEMA_VERSION,
    ResultsStore,
)
from repro.sim.sweep import SweepCache, cell_key

FAST = SimulationConfig(duration_us=10_000.0, n_subcarriers=8)


def _metrics(delivered: int = 1200) -> NetworkMetrics:
    return NetworkMetrics(
        elapsed_us=100.0,
        links={
            "a->b": LinkMetrics(
                pair_name="a->b", delivered_bits=delivered, attempted_bits=2 * delivered
            )
        },
    )


def _describe(protocol: str = "n+", run: int = 0) -> dict:
    return {
        "scenario": "three-pair",
        "scenario_fingerprint": "f" * 64,
        "protocol": protocol,
        "run": run,
        "run_seed": 1000 * run,
        "config_digest": "c" * 64,
    }


class TestCacheParity:
    """The SweepCache-compatible surface: load/store/len."""

    def test_load_misses_on_unknown_key(self, tmp_path):
        assert ResultsStore(tmp_path).load("0" * 64) is None

    def test_store_load_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        metrics = _metrics()
        store.store("a" * 64, metrics, _describe())
        assert store.load("a" * 64).to_dict() == metrics.to_dict()
        assert len(store) == 1

    def test_cell_key_delegates_to_the_sweep_scheme(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.cell_key("three-pair", "n+", 4, FAST) == cell_key(
            "three-pair", "n+", 4, FAST
        )
        assert store.cell_key("three-pair", "n+", 4, FAST) == SweepCache(
            tmp_path
        ).cell_key("three-pair", "n+", 4, FAST)

    def test_store_overwrites_atomically(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.store("a" * 64, _metrics(100), _describe())
        store.store("a" * 64, _metrics(999), _describe())
        assert store.load("a" * 64).links["a->b"].delivered_bits == 999
        assert len(store) == 1

    def test_only_done_cells_hit(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = "a" * 64
        store.store(key, _metrics(), _describe())
        store.mark_running([key])
        assert store.load(key) is None
        store.mark_pending([key])
        assert store.load(key) is None
        store.mark_failed(key, "boom", _describe())
        assert store.load(key) is None
        assert len(store) == 0

    def test_load_many_matches_per_key_loads(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.store("a" * 64, _metrics(100), _describe(run=0))
        store.store("b" * 64, _metrics(200), _describe(run=1))
        store.store("c" * 64, _metrics(300), _describe(run=2))
        store.mark_failed("c" * 64, "boom", _describe(run=2))
        hits = store.load_many(["a" * 64, "b" * 64, "c" * 64, "d" * 64])
        # Only done cells hit, exactly like load(); misses are absent.
        assert set(hits) == {"a" * 64, "b" * 64}
        for key in hits:
            assert hits[key].to_dict() == store.load(key).to_dict()

    def test_root_may_be_a_database_path(self, tmp_path):
        store = ResultsStore(tmp_path / "custom.sqlite")
        store.store("a" * 64, _metrics(), _describe())
        assert (tmp_path / "custom.sqlite").exists()
        assert ResultsStore(tmp_path / "custom.sqlite").load("a" * 64) is not None


class TestSelfHealing:
    def test_corrupt_database_is_quarantined_not_fatal(self, tmp_path):
        (tmp_path / STORE_FILENAME).write_text("this is not a sqlite database" * 100)
        store = ResultsStore(tmp_path)
        # The unreadable store became an empty one (cells are misses)...
        assert len(store) == 0
        store.store("a" * 64, _metrics(), _describe())
        assert store.load("a" * 64) is not None
        # ...and the corrupt file was set aside for inspection.
        assert list(tmp_path.glob("*.corrupt.*"))

    def test_newer_store_layout_is_refused(self, tmp_path):
        ResultsStore(tmp_path).close()
        conn = sqlite3.connect(tmp_path / STORE_FILENAME)
        with conn:
            conn.execute(
                "UPDATE store_meta SET value=? WHERE key='store_schema'",
                (str(STORE_SCHEMA_VERSION + 10),),
            )
        conn.close()
        with pytest.raises(ConfigurationError, match="newer than this build"):
            ResultsStore(tmp_path)


class TestStateMachine:
    def test_states_are_the_documented_four(self):
        assert CELL_STATES == ("pending", "running", "done", "failed")

    def test_transitions_and_counts(self, tmp_path):
        store = ResultsStore(tmp_path)
        keys = ["a" * 64, "b" * 64]
        store.begin_sweep(
            "s" * 64, {"n_runs": 2}, [(k, _describe(run=i)) for i, k in enumerate(keys)]
        )
        assert store.count("pending") == 2
        store.mark_running(keys)
        assert store.count("running") == 2
        store.store(keys[0], _metrics(), _describe(run=0))
        store.mark_failed(keys[1], "boom", _describe(run=1))
        assert store.count("done") == 1
        assert store.count("failed") == 1
        assert store.count() == 2

    def test_begin_sweep_preserves_done_cells(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.store("a" * 64, _metrics(), _describe())
        store.begin_sweep(
            "s" * 64,
            {},
            [("a" * 64, _describe()), ("b" * 64, _describe(run=1))],
        )
        # The done cell is this sweep's cache hit, not re-pended.
        assert store.load("a" * 64) is not None
        assert store.count("pending") == 1

    def test_begin_sweep_resets_orphaned_running_cells(self, tmp_path):
        """A sweep process that died without checkpointing leaves
        `running` rows; re-invoking the sweep must reclaim them."""
        store = ResultsStore(tmp_path)
        cells = [("a" * 64, _describe())]
        store.begin_sweep("s" * 64, {}, cells)
        store.mark_running(["a" * 64])
        store.begin_sweep("s" * 64, {}, cells)
        assert store.count("running") == 0
        assert store.count("pending") == 1

    def test_checkpoint_resets_running_and_marks_interrupted(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.begin_sweep("s" * 64, {"seed": 0}, [("a" * 64, _describe())])
        store.mark_running(["a" * 64])
        store.checkpoint_sweep("s" * 64)
        assert store.count("running") == 0
        assert store.count("pending") == 1
        assert store.get_sweep("s" * 64).status == "interrupted"

    def test_finish_sweep_marks_done(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.begin_sweep("s" * 64, {"seed": 0}, [])
        store.finish_sweep("s" * 64)
        assert store.get_sweep("s" * 64).status == "done"

    def test_get_sweep_round_trips_the_manifest(self, tmp_path):
        store = ResultsStore(tmp_path)
        manifest = {"scenario": "three-pair", "n_runs": 4, "protocols": ["n+"]}
        store.begin_sweep("s" * 64, manifest, [])
        assert store.get_sweep("s" * 64).manifest == manifest
        assert store.get_sweep("missing" + "0" * 57) is None
        assert [record.sweep_id for record in store.sweeps()] == ["s" * 64]


class TestQueries:
    def _populate(self, store: ResultsStore) -> None:
        for run in range(2):
            for protocol in ("802.11n", "n+"):
                describe = dict(_describe(protocol=protocol, run=run))
                key = f"{protocol}-{run}".ljust(64, "0")
                store.store(key, _metrics(100 * run + 1), describe)
        failed = dict(_describe(protocol="n+", run=2))
        store.mark_failed("failed".ljust(64, "0"), "boom", failed)

    def test_query_filters_compose(self, tmp_path):
        store = ResultsStore(tmp_path)
        self._populate(store)
        assert len(store.query()) == 5
        assert len(store.query(protocol="n+")) == 3
        assert len(store.query(protocol="n+", status="done")) == 2
        assert store.query(status="failed")[0].error == "boom"
        assert store.query(scenario="nonexistent") == []

    def test_query_returns_metrics_lazily(self, tmp_path):
        store = ResultsStore(tmp_path)
        self._populate(store)
        without = store.query(protocol="n+", status="done")
        assert all(record.metrics() is None for record in without)
        with_payload = store.query(protocol="n+", status="done", with_metrics=True)
        assert [r.metrics().links["a->b"].delivered_bits for r in with_payload] == [
            1,
            101,
        ]

    def test_summary_counts_by_coordinates(self, tmp_path):
        store = ResultsStore(tmp_path)
        self._populate(store)
        summary = store.summary()
        assert summary[("three-pair", "802.11n")] == {"done": 2}
        assert summary[("three-pair", "n+")] == {"done": 2, "failed": 1}


class TestJsonMigration:
    def _seed_json_cache(self, tmp_path, n: int = 2) -> list:
        cache = SweepCache(tmp_path)
        keys = []
        for run_seed in range(n):
            key = cache.cell_key("three-pair", "n+", run_seed, FAST)
            cache.store(key, _metrics(100 + run_seed), describe=_describe(run=run_seed))
            keys.append(key)
        return keys

    def test_legacy_cells_migrate_on_first_open(self, tmp_path):
        keys = self._seed_json_cache(tmp_path)
        store = ResultsStore(tmp_path)
        assert len(store) == 2
        for i, key in enumerate(keys):
            assert store.load(key).links["a->b"].delivered_bits == 100 + i
        # The JSON files are left in place, untouched.
        assert len(SweepCache(tmp_path)) == 2

    def test_migration_is_one_shot(self, tmp_path):
        keys = self._seed_json_cache(tmp_path)
        ResultsStore(tmp_path).close()
        # New JSON files appearing *after* the migration are not imported
        # (the old code path is done; the store owns the directory now).
        cache = SweepCache(tmp_path)
        late_key = cache.cell_key("three-pair", "n+", 99, FAST)
        cache.store(late_key, _metrics(), describe={})
        store = ResultsStore(tmp_path)
        assert store.load(keys[0]) is not None
        assert store.load(late_key) is None

    def test_unreadable_and_foreign_json_files_are_skipped(self, tmp_path):
        keys = self._seed_json_cache(tmp_path, n=1)
        (tmp_path / ("e" * 64 + ".json")).write_text("{ truncated")
        (tmp_path / "notes.json").write_text(json.dumps({"metrics": {}}))
        store = ResultsStore(tmp_path)
        assert len(store) == 1
        assert store.load(keys[0]) is not None


_V1_SCHEMA = """
CREATE TABLE store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE sweeps (
    sweep_id      TEXT PRIMARY KEY,
    manifest_json TEXT NOT NULL,
    status        TEXT NOT NULL CHECK (status IN ('running','interrupted','done')),
    created_at    REAL NOT NULL,
    updated_at    REAL NOT NULL
);
CREATE TABLE cells (
    key                  TEXT PRIMARY KEY,
    status               TEXT NOT NULL CHECK (status IN ('pending','running','done','failed')),
    scenario             TEXT,
    scenario_fingerprint TEXT,
    protocol             TEXT,
    run                  INTEGER,
    run_seed             INTEGER,
    config_digest        TEXT,
    sweep_id             TEXT,
    metrics_json         TEXT,
    error                TEXT,
    updated_at           REAL NOT NULL
);
INSERT INTO store_meta (key, value) VALUES ('store_schema', '1');
"""


class TestSchemaV2Migration:
    """In-place upgrade of a version-1 store (no capsule columns)."""

    def _seed_v1_store(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        conn = sqlite3.connect(path)
        with conn:
            conn.executescript(_V1_SCHEMA)
            conn.execute(
                "INSERT INTO cells (key, status, protocol, metrics_json, updated_at) "
                "VALUES (?, 'done', 'n+', ?, 0.0)",
                ("a" * 64, json.dumps(_metrics().to_dict())),
            )
            conn.execute(
                "INSERT INTO cells (key, status, protocol, error, updated_at) "
                "VALUES (?, 'failed', 'n+', 'RuntimeError: boom', 0.0)",
                ("b" * 64,),
            )
        conn.close()
        return path

    def test_v1_store_upgrades_in_place(self, tmp_path):
        path = self._seed_v1_store(tmp_path)
        store = ResultsStore(tmp_path)
        conn = sqlite3.connect(path)
        columns = {r[1] for r in conn.execute("PRAGMA table_info(cells)")}
        version = conn.execute(
            "SELECT value FROM store_meta WHERE key='store_schema'"
        ).fetchone()[0]
        conn.close()
        assert {"capsule_path", "traceback"} <= columns
        assert int(version) == STORE_SCHEMA_VERSION
        # old rows survive: the done cell still hits, the failure is kept
        assert store.load("a" * 64).links["a->b"].delivered_bits == 1200
        failed = [r for r in store.query() if r.status == "failed"]
        assert failed[0].error == "RuntimeError: boom"
        assert failed[0].capsule_path is None

    def test_migrated_store_accepts_capsule_records(self, tmp_path):
        self._seed_v1_store(tmp_path)
        store = ResultsStore(tmp_path)
        store.mark_failed(
            "b" * 64,
            "RuntimeError: boom",
            _describe(),
            capsule_path="/tmp/capsule.json",
            traceback="Traceback ...",
        )
        row = [r for r in store.query() if r.key == "b" * 64][0]
        assert row.capsule_path == "/tmp/capsule.json"
        assert row.traceback == "Traceback ..."


class TestUnwritableDirectory:
    """An unusable cache location is a clean ConfigurationError with no
    partial files -- not a bare OSError halfway through a sweep."""

    def test_file_in_place_of_the_cache_dir(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        with pytest.raises(ConfigurationError, match="cannot create cache directory"):
            ResultsStore(blocker / "cache")
        assert blocker.read_text() == "i am a file"
        assert list(tmp_path.iterdir()) == [blocker]

    def test_sweep_surfaces_the_configuration_error(self, tmp_path):
        from repro.sim.runner import SimulationConfig as _Config
        from repro.sim.sweep import run_sweep

        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        with pytest.raises(ConfigurationError, match="cache directory"):
            run_sweep(
                "three-pair",
                ["n+"],
                n_runs=1,
                config=_Config(duration_us=4000.0, n_subcarriers=4),
                cache_dir=blocker / "cache",
            )
        assert list(tmp_path.iterdir()) == [blocker]

    @pytest.mark.skipif(os.geteuid() == 0, reason="root ignores directory modes")
    def test_readonly_directory(self, tmp_path):
        readonly = tmp_path / "readonly"
        readonly.mkdir()
        readonly.chmod(0o500)
        try:
            with pytest.raises(ConfigurationError):
                ResultsStore(readonly)
        finally:
            readonly.chmod(0o700)
