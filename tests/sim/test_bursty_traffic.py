"""Tests for non-saturated (Poisson) traffic through the full simulator."""

import numpy as np
import pytest

from repro.sim.runner import SimulationConfig, run_simulation
from repro.sim.scenarios import three_pair_scenario


class TestPoissonLoadedRuns:
    def test_light_load_is_mostly_delivered(self):
        config = SimulationConfig(
            duration_us=40_000.0, n_subcarriers=8, packet_rate_pps=100.0
        )
        totals = []
        offered_mbps = 3 * 100.0 * 12_000 / 1e6
        for seed in (1, 2, 3):
            metrics = run_simulation(three_pair_scenario(), "n+", seed=seed, config=config)
            totals.append(metrics.total_throughput_mbps())
        # Delivered throughput tracks the (light) offered load, within the
        # variance of a short Poisson sample.
        assert 0.3 * offered_mbps < np.mean(totals) < 2.0 * offered_mbps

    def test_delivered_bits_never_exceed_attempted_bits(self):
        config = SimulationConfig(
            duration_us=40_000.0, n_subcarriers=8, packet_rate_pps=300.0
        )
        metrics = run_simulation(three_pair_scenario(), "802.11n", seed=4, config=config)
        for link in metrics.links.values():
            assert link.delivered_bits <= link.attempted_bits

    def test_heavier_load_yields_more_throughput(self):
        light = SimulationConfig(duration_us=40_000.0, n_subcarriers=8, packet_rate_pps=50.0)
        heavy = SimulationConfig(duration_us=40_000.0, n_subcarriers=8, packet_rate_pps=600.0)
        light_total = run_simulation(
            three_pair_scenario(), "n+", seed=5, config=light
        ).total_throughput_mbps()
        heavy_total = run_simulation(
            three_pair_scenario(), "n+", seed=5, config=heavy
        ).total_throughput_mbps()
        assert heavy_total > light_total

    def test_saturated_default_still_works(self):
        config = SimulationConfig(duration_us=20_000.0, n_subcarriers=8)
        metrics = run_simulation(three_pair_scenario(), "n+", seed=6, config=config)
        assert metrics.total_throughput_mbps() > 1.0
