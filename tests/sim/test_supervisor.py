"""Tests for the worker supervisor (repro.sim.supervisor).

The supervisor is generic -- ``worker_fn(payload) -> result`` -- so
these tests drive it with tiny arithmetic payloads and misbehaving
workers (suicide by SIGKILL, SIGSTOP freezes, deliberate sleeps) rather
than simulations.  The contracts pinned here: every task settles exactly
once (done or failed), worker deaths re-queue rather than fail, hangs
are told apart from slow cells, the pool shrinks gracefully, and no
worker process outlives the event loop.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.sim.supervisor import (
    PoolShrunk,
    TaskAssigned,
    TaskDone,
    TaskFailed,
    TaskRequeued,
    TaskRetry,
    WorkerDeath,
    WorkerSupervisor,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervisor tests use the fork start method for closure-free workers",
)


# -- worker functions (module-level: picklable under any start method) -------


def _double(x):
    return 2 * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return 2 * x


def _always_fail(x):
    raise RuntimeError("nope")


def _suicide_once(args):
    """Die by SIGKILL the first time a marker allows it, then compute."""
    marker, x = args
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return 2 * x
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _always_suicide(x):
    os.kill(os.getpid(), signal.SIGKILL)


def _freeze_once(args):
    """SIGSTOP self (heartbeat thread included) the first time."""
    marker, x = args
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return 2 * x
    os.close(fd)
    os.kill(os.getpid(), signal.SIGSTOP)
    time.sleep(60)  # never reached before the supervisor kills us


def _slow(x):
    time.sleep(30)
    return x


def _drain(supervisor):
    events = list(supervisor.events())
    done = {e.task_id: e.result for e in events if isinstance(e, TaskDone)}
    failed = {e.task_id: e.error for e in events if isinstance(e, TaskFailed)}
    return events, done, failed


def _assert_no_stray_workers():
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


class TestHappyPath:
    def test_all_tasks_complete(self):
        supervisor = WorkerSupervisor(_double, list(range(8)), workers=3)
        events, done, failed = _drain(supervisor)
        assert failed == {}
        assert done == {i: 2 * i for i in range(8)}
        assert sum(isinstance(e, TaskAssigned) for e in events) == 8
        _assert_no_stray_workers()

    def test_pool_is_capped_at_the_task_count(self):
        supervisor = WorkerSupervisor(_double, [1], workers=16)
        _, done, _ = _drain(supervisor)
        assert done == {0: 2}
        assert supervisor.target_pool_size == 1

    def test_request_stop_ends_the_loop_and_the_pool(self):
        supervisor = WorkerSupervisor(_slow, list(range(4)), workers=2)
        for _ in supervisor.events():
            supervisor.request_stop()
        assert supervisor.stopped
        _assert_no_stray_workers()


class TestRetries:
    def test_worker_errors_consume_attempts_then_fail(self):
        supervisor = WorkerSupervisor(
            _fail_on_odd, [0, 1, 2, 3], workers=2, max_retries=1, retry_backoff_s=0.0
        )
        events, done, failed = _drain(supervisor)
        assert done == {0: 0, 2: 4}
        assert set(failed) == {1, 3}
        assert all("odd payload" in error for error in failed.values())
        # Each failed task burned its retry first.
        retried = [e.task_id for e in events if isinstance(e, TaskRetry)]
        assert sorted(retried) == [1, 3]
        _assert_no_stray_workers()

    def test_no_backoff_sleep_after_the_final_attempt(self):
        """With zero retries a huge backoff must never be paid."""
        supervisor = WorkerSupervisor(
            _always_fail, [1], workers=1, max_retries=0, retry_backoff_s=30.0
        )
        start = time.monotonic()
        _, done, failed = _drain(supervisor)
        assert time.monotonic() - start < 5.0
        assert done == {} and set(failed) == {0}

    def test_backoff_is_nonblocking_for_other_tasks(self):
        """One task waiting out its backoff must not stall the rest."""
        supervisor = WorkerSupervisor(
            _fail_on_odd, [1, 0, 2, 4], workers=1, max_retries=1, retry_backoff_s=1.0
        )
        events = []
        order = []
        for event in supervisor.events():
            events.append(event)
            if isinstance(event, TaskDone):
                order.append(event.task_id)
        # The even payloads completed while task 0 (payload 1) backed off.
        assert order[:3] == [1, 2, 3]


class TestWorkerDeaths:
    def test_killed_worker_is_replaced_and_task_requeued(self, tmp_path):
        marker = str(tmp_path / "died-once")
        payloads = [(marker, i) for i in range(3)]
        supervisor = WorkerSupervisor(_suicide_once, payloads, workers=2)
        events, done, failed = _drain(supervisor)
        assert failed == {}
        assert done == {i: 2 * i for i in range(3)}
        deaths = [e for e in events if isinstance(e, WorkerDeath)]
        assert len(deaths) == 1 and not deaths[0].deliberate
        assert "killed" in deaths[0].reason
        requeued = [e for e in events if isinstance(e, TaskRequeued)]
        assert len(requeued) == 1
        assert supervisor.deaths == 1
        _assert_no_stray_workers()

    def test_requeues_are_bounded_per_task(self):
        supervisor = WorkerSupervisor(
            _always_suicide, [7], workers=1, max_requeues=2, shrink_after_deaths=100
        )
        events, done, failed = _drain(supervisor)
        assert done == {}
        assert set(failed) == {0}
        assert "died every time" in failed[0]
        assert sum(isinstance(e, TaskRequeued) for e in events) == 2
        assert supervisor.deaths == 3  # initial + 2 requeues
        _assert_no_stray_workers()

    def test_repeated_deaths_shrink_the_pool(self):
        supervisor = WorkerSupervisor(
            _always_suicide,
            list(range(3)),
            workers=3,
            max_requeues=0,
            shrink_after_deaths=1,
        )
        events, _, failed = _drain(supervisor)
        assert set(failed) == {0, 1, 2}
        shrinks = [e.target for e in events if isinstance(e, PoolShrunk)]
        assert shrinks == [2, 1]  # never below one worker
        assert supervisor.target_pool_size == 1
        _assert_no_stray_workers()


class TestHangsAndTimeouts:
    def test_frozen_worker_is_detected_as_hung_not_slow(self, tmp_path):
        marker = str(tmp_path / "froze-once")
        supervisor = WorkerSupervisor(
            _freeze_once,
            [(marker, 5)],
            workers=1,
            heartbeat_interval_s=0.05,
            hang_timeout_s=0.5,
        )
        events, done, failed = _drain(supervisor)
        assert failed == {}
        assert done == {0: 10}
        deaths = [e for e in events if isinstance(e, WorkerDeath)]
        assert len(deaths) == 1 and not deaths[0].deliberate
        assert "hung" in deaths[0].reason
        _assert_no_stray_workers()

    def test_slow_task_is_killed_and_counts_an_attempt(self):
        supervisor = WorkerSupervisor(
            _slow,
            [3],
            workers=1,
            task_timeout_s=0.4,
            max_retries=0,
            retry_backoff_s=0.0,
            heartbeat_interval_s=0.05,
            hang_timeout_s=30.0,
        )
        events, done, failed = _drain(supervisor)
        assert done == {}
        assert set(failed) == {0} and "timed out" in failed[0]
        deaths = [e for e in events if isinstance(e, WorkerDeath)]
        # A deliberate timeout kill, not an unexpected death: it neither
        # shrinks the pool nor counts toward the death budget.
        assert len(deaths) == 1 and deaths[0].deliberate
        assert supervisor.timeout_kills == 1 and supervisor.deaths == 0
        assert not any(isinstance(e, PoolShrunk) for e in events)
        _assert_no_stray_workers()
