"""Tests for the ChannelBank storage and the batched estimate prefetch.

The load-bearing guarantees:

* reciprocal channel directions are read-only *transposed views* of the
  forward direction's memory (no copies) -- and mutating any returned
  channel raises, which is what guards the shared-view invariant;
* the ``(tx, rx) -> (group, slot, transposed)`` index is consistent with
  the stacked per-group tensors, on every draw contract;
* ``HardwareProfile.perturb_channel_batch`` is bit-identical to the
  equivalent sequence of per-channel ``perturb_channel`` calls;
* ``Network.prefetch_estimates`` fills the estimate memo in stacked
  draws under the grouped contract and is a strict no-op under the v2
  contracts (their lazy draw order is part of v2 reproducibility).
"""

import numpy as np
import pytest

from repro.channel.hardware import HardwareProfile
from repro.exceptions import DimensionError
from repro.sim.network import ChannelBank, Network
from repro.sim.runner import SimulationConfig, run_simulation
from repro.sim.scenarios import custom_pairs_scenario, three_pair_scenario

ALL_CONTRACTS = ("grouped", "batched", "per-pair")


def _network(mode, seed=3, antenna_counts=(1, 2, 3, 2)):
    scenario = custom_pairs_scenario(list(antenna_counts))
    return Network(
        scenario.stations,
        scenario.pairs,
        np.random.default_rng(seed),
        n_subcarriers=8,
        channel_draws=mode,
    )


class TestSharedViewInvariant:
    @pytest.mark.parametrize("mode", ALL_CONTRACTS)
    def test_reciprocal_is_a_transposed_view_not_a_copy(self, mode):
        network = _network(mode)
        forward = network.true_channel(0, 3)
        reverse = network.true_channel(3, 0)
        assert np.array_equal(reverse, forward.transpose(0, 2, 1))
        assert np.shares_memory(forward, reverse)

    @pytest.mark.parametrize("mode", ALL_CONTRACTS)
    def test_mutating_a_returned_channel_raises(self, mode):
        """The regression test of the shared-view invariant: a consumer
        writing into a channel would silently corrupt the reciprocal
        direction (same memory), so the bank refuses the write."""
        network = _network(mode)
        forward = network.true_channel(0, 3)
        reverse = network.true_channel(3, 0)
        for channel in (forward, reverse):
            assert not channel.flags.writeable
            with pytest.raises(ValueError):
                channel[0, 0, 0] = 1.0 + 0.0j

    def test_estimated_channels_are_read_only_too(self):
        network = _network("grouped")
        network.reseed_estimation_noise(1)
        estimate = network.estimated_channel(0, 1)
        with pytest.raises(ValueError):
            estimate[0, 0, 0] = 0.0


class TestChannelBankIndex:
    @pytest.mark.parametrize("mode", ALL_CONTRACTS)
    def test_lookup_is_consistent_with_the_stacks(self, mode):
        network = _network(mode)
        bank = network.channels
        for a, b in bank.pairs():
            group, slot, transposed = bank.lookup(a, b)
            assert not transposed
            group_r, slot_r, transposed_r = bank.lookup(b, a)
            assert (group_r, slot_r, transposed_r) == (group, slot, True)
            stack = bank._stacks[group]
            assert np.array_equal(bank.channel(a, b), stack[slot])
            assert bank.snr_db(a, b) == bank.snr_db(b, a)

    def test_one_group_per_antenna_shape(self):
        network = _network("grouped", antenna_counts=(1, 2, 3, 2, 1))
        bank = network.channels
        shapes = set()
        for a, b in bank.pairs():
            shape = bank.channel(a, b).shape[1:]  # (N, M)
            shapes.add((shape[1], shape[0]))  # stored keyed by (n_tx, n_rx)
        assert bank.n_groups == len(shapes)
        assert bank.n_pairs == 10 * 9 // 2

    def test_unknown_link_raises_keyerror(self):
        network = _network("grouped")
        with pytest.raises(KeyError):
            network.channels.lookup(0, 999)

    def test_add_group_validates_shapes(self):
        bank = ChannelBank()
        with pytest.raises(DimensionError):
            bank.add_group([(0, 1)], np.zeros((2, 4, 1, 1), dtype=complex), [5.0, 6.0])
        with pytest.raises(DimensionError):
            bank.add_group([(0, 1)], np.zeros((1, 4, 1, 1), dtype=complex), [5.0, 6.0])

    def test_nbytes_counts_each_pair_once(self):
        """Reciprocals are views: the bank holds one tensor slot per
        unordered pair, not two."""
        network = _network("grouped", antenna_counts=(2, 2))
        bank = network.channels
        per_pair = 8 * 2 * 2 * 16  # n_sub * N * M * complex128
        assert bank.nbytes == bank.n_pairs * per_pair + bank.n_pairs * 8


class TestPerturbChannelBatch:
    @pytest.mark.parametrize("reciprocity", [False, True])
    def test_bit_identical_to_sequential_perturbs(self, reciprocity):
        hardware = HardwareProfile()
        rng = np.random.default_rng(11)
        channels = rng.standard_normal((5, 8, 2, 3)) + 1j * rng.standard_normal((5, 8, 2, 3))
        rng_batch = np.random.default_rng(99)
        rng_seq = np.random.default_rng(99)
        batch = hardware.perturb_channel_batch(channels, rng_batch, reciprocity=reciprocity)
        for index in range(channels.shape[0]):
            expected = hardware.perturb_channel(
                channels[index], rng_seq, reciprocity=reciprocity
            )
            assert np.array_equal(batch[index], expected)
        assert rng_batch.bit_generator.state == rng_seq.bit_generator.state

    def test_rejects_unstacked_input(self):
        with pytest.raises(ValueError):
            HardwareProfile().perturb_channel_batch(
                np.zeros(4, dtype=complex), np.random.default_rng(0)
            )


class TestPrefetchEstimates:
    def test_noop_under_v2_contracts(self):
        for mode in ("batched", "per-pair"):
            network = _network(mode)
            network.reseed_estimation_noise(5)
            state_before = network._estimation_rng.bit_generator.state
            network.prefetch_estimates([(0, 1, False), (0, 3, True)])
            assert network._estimate_memo == {}
            assert network._estimation_rng.bit_generator.state == state_before

    def test_fills_the_memo_under_grouped(self):
        network = _network("grouped")
        network.reseed_estimation_noise(5)
        network.prefetch_estimates([(0, 1, False), (0, 3, True), (0, 1, False)])
        assert set(network._estimate_memo) == {(0, 1, False), (0, 3, True)}
        # Later per-link queries hit the memo (same object, no new draws).
        prefetched = network._estimate_memo[(0, 1, False)]
        state = network._estimation_rng.bit_generator.state
        assert network.estimated_channel(0, 1) is prefetched
        assert network._estimation_rng.bit_generator.state == state

    def test_prefetched_estimates_are_perturbed_channels(self):
        """A prefetched estimate is close to (but not exactly) the true
        channel, like any lazy estimate."""
        network = _network("grouped")
        network.reseed_estimation_noise(5)
        network.prefetch_estimates([(0, 1, False)])
        estimate = network.estimated_channel(0, 1)
        true = network.true_channel(0, 1)
        error = np.linalg.norm(estimate - true) / np.linalg.norm(true)
        assert 0.0 < error < 0.1

    def test_grouped_simulation_is_deterministic(self):
        """The prefetch path is part of the seeded v3 contract: repeated
        runs produce bit-identical metrics."""
        config = SimulationConfig(
            duration_us=10_000.0, n_subcarriers=8, channel_draws="grouped"
        )
        first = run_simulation(three_pair_scenario(), "n+", seed=13, config=config)
        second = run_simulation(three_pair_scenario(), "n+", seed=13, config=config)
        assert first.to_dict() == second.to_dict()
