"""Tests for the recovery-protocol family and the spec-driven runner.

Three layers of guarantees:

* **Golden snapshots** -- the seeded metrics of every built-in variant,
  captured *before* the protocol-variant refactor, still come out
  bit-identical from both a bare name and a default-parameter
  :class:`ProtocolSpec`.  This is the refactor's no-behaviour-change
  contract.
* **Recovery mechanics** -- fast-retransmit arms a zero-backoff resend
  only on channel loss (never on a collision), and erasure decoding
  accounts recovered bits without ever counting a bit as both recovered
  and dropped.
* **Sweeps over specs** -- one grid compares ``recovery`` policies on a
  faulty scenario, keyed by canonical spec strings, with bare names and
  default specs hitting the same cache cells.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mac.csma import CW_MIN, DcfContender
from repro.mac.dot11n import Dot11nMac
from repro.mac.plain_csma import CsmaMac
from repro.mac.variants import ProtocolSpec
from repro.sim.faults import FaultInjector, FaultSchedule
from repro.sim.medium import Medium
from repro.sim.network import Network
from repro.sim.runner import SimulationConfig, run_many, run_simulation
from repro.sim.scenarios import scenario_factory, three_pair_scenario
from repro.sim.sweep import SweepCache, run_sweep

GOLDEN_CONFIG = SimulationConfig(duration_us=20_000.0, n_subcarriers=8)

#: ``(scenario, protocol) -> (elapsed_us, total throughput)`` captured at
#: seed 7 on the pre-refactor runner (commit a5e5a6c).  These literals
#: are the refactor's bit-identity contract: a default-parameter spec
#: must reproduce them exactly, on clean and faulty scenarios alike.
GOLDEN = {
    ("three-pair", "802.11n"): (20729.0, 9.262386029234406),
    ("three-pair", "n+"): (20828.0, 18.185519492990206),
    ("three-pair", "beamforming"): (20729.0, 9.262386029234406),
    ("three-pair", "csma"): (20241.0, 11.264265599525714),
    ("dense-lan-20-faulty", "802.11n"): (20378.0, 2.355481401511434),
    ("dense-lan-20-faulty", "n+"): (21972.0, 3.8492626979792464),
    ("dense-lan-20-faulty", "beamforming"): (20378.0, 2.355481401511434),
    ("dense-lan-20-faulty", "csma"): (22139.0, 2.1681196079317044),
}

RECOVERY_SPECS = (
    "n+",
    ("n+", {"recovery": "fast-retransmit"}),
    "n+[recovery=erasure]",
)


class TestGoldenSnapshots:
    @pytest.mark.parametrize("cell", sorted(GOLDEN), ids="-".join)
    def test_bare_name_and_default_spec_are_bit_identical(self, cell):
        scenario_name, protocol = cell
        expected = GOLDEN[cell]
        bare = run_simulation(
            scenario_factory(scenario_name)(), protocol, seed=7, config=GOLDEN_CONFIG
        )
        assert (bare.elapsed_us, bare.total_throughput_mbps()) == expected
        spec = run_simulation(
            scenario_factory(scenario_name)(),
            ProtocolSpec(protocol),
            seed=7,
            config=GOLDEN_CONFIG,
        )
        assert spec.to_dict() == bare.to_dict()

    def test_default_recovery_draws_no_erasure_coins(self):
        """recovery="none" must not touch the erasure path at all: the
        faulty golden above already pins the exact metrics, and the
        recovered counter stays at its serialised default."""
        metrics = run_simulation(
            scenario_factory("dense-lan-20-faulty")(),
            "802.11n",
            seed=7,
            config=GOLDEN_CONFIG,
        )
        assert all(link.recovered_bits == 0 for link in metrics.links.values())


class TestCsmaVariant:
    def test_csma_caps_streams_at_one(self, rng):
        scenario = three_pair_scenario()
        network = Network(scenario.stations, scenario.pairs, rng, n_subcarriers=8)
        agent = CsmaMac(scenario.pairs[2], network, np.random.default_rng(1))
        agent.refill(0.0)
        streams = agent.plan_initial(100.0, Medium())
        assert len(streams) == 1

    def test_dot11n_remains_uncapped(self, rng):
        scenario = three_pair_scenario()
        network = Network(scenario.stations, scenario.pairs, rng, n_subcarriers=8)
        agent = Dot11nMac(scenario.pairs[2], network, np.random.default_rng(1))
        agent.refill(0.0)
        assert len(agent.plan_initial(100.0, Medium())) == 3


class TestFastRetransmitContender:
    def test_armed_contender_draws_zero_backoff(self):
        contender = DcfContender(node_id=0)
        contender.record_collision()
        window = contender.contention_window
        contender.arm_fast_retransmit()
        assert contender.backoff_window == 0
        assert contender.contention_window == window  # cw untouched
        assert contender.draw_backoff(np.random.default_rng(0)) == 0

    def test_success_and_collision_consume_the_pass(self):
        contender = DcfContender(node_id=0)
        contender.arm_fast_retransmit()
        contender.record_success()
        assert contender.backoff_window == CW_MIN
        contender.arm_fast_retransmit()
        contender.record_collision()
        assert contender.backoff_window == contender.contention_window > CW_MIN

    def _agent(self, spec):
        scenario = three_pair_scenario()
        network = Network(
            scenario.stations, scenario.pairs, np.random.default_rng(3), n_subcarriers=8
        )
        agent = Dot11nMac(
            scenario.pairs[0], network, np.random.default_rng(1), spec=spec
        )
        agent.refill(0.0)
        return agent

    def test_channel_loss_arms_only_under_fast_retransmit(self):
        receiver = three_pair_scenario().pairs[0].receivers[0].node_id
        fast = self._agent(ProtocolSpec("802.11n", {"recovery": "fast-retransmit"}))
        fast.record_outcome(receiver, 1000, delivered=False, collided=False)
        assert fast.contender.backoff_window == 0

        plain = self._agent(ProtocolSpec("802.11n"))
        plain.record_outcome(receiver, 1000, delivered=False, collided=False)
        assert plain.contender.backoff_window > CW_MIN

    def test_collisions_always_back_off(self):
        receiver = three_pair_scenario().pairs[0].receivers[0].node_id
        agent = self._agent(ProtocolSpec("802.11n", {"recovery": "fast-retransmit"}))
        agent.record_outcome(receiver, 1000, delivered=False, collided=True)
        assert agent.contender.backoff_window > CW_MIN

    def test_retry_cap_override_reaches_the_queues(self):
        agent = self._agent(ProtocolSpec("802.11n", {"retry_cap": 2}))
        assert all(q.max_retries == 2 for q in agent.queues.values())


class TestErasureDraws:
    def test_draw_counts_erased_fragments(self):
        injector = FaultInjector(FaultSchedule(), None, seed=0)
        assert injector.draw_erasure(0.0, 8) == 0
        assert injector.draw_erasure(1.0, 8) == 8
        assert injector.losses_drawn == 2

    def test_draws_are_seed_deterministic(self):
        first = FaultInjector(FaultSchedule(), None, seed=3)
        second = FaultInjector(FaultSchedule(), None, seed=3)
        draws = [first.draw_erasure(0.4, 8) for _ in range(20)]
        assert draws == [second.draw_erasure(0.4, 8) for _ in range(20)]
        assert any(0 < d < 8 for d in draws)


class TestErasureRecovery:
    CONFIG = SimulationConfig(duration_us=100_000.0, n_subcarriers=8)

    def test_erasure_recovers_bits_on_a_faulty_scenario(self):
        results = run_many(
            scenario_factory("dense-lan-20-faulty"),
            ["n+", "n+[recovery=erasure]"],
            n_runs=1,
            config=self.CONFIG,
        )
        plain = results["n+"][0]
        coded = results["n+[recovery=erasure]"][0]
        assert all(link.recovered_bits == 0 for link in plain.links.values())
        recovered = sum(link.recovered_bits for link in coded.links.values())
        assert recovered > 0
        # No bit is both recovered and dropped: recovered bits are a
        # share of *decoded* (delivered) frames only.
        for link in coded.links.values():
            assert 0 <= link.recovered_bits <= link.delivered_bits

    def test_recovered_bits_survive_serialisation(self):
        metrics = run_simulation(
            scenario_factory("dense-lan-20-faulty")(),
            "n+[recovery=erasure]",
            seed=1000,  # placement_seed(0, 0) + mac offset irrelevant here
            config=self.CONFIG,
        )
        payload = metrics.to_dict()
        clone = type(metrics).from_dict(payload)
        assert clone.to_dict() == payload
        assert any("recovered_bits" in link for link in payload["links"].values())


class TestRecoverySweep:
    CONFIG = SimulationConfig(duration_us=30_000.0, n_subcarriers=8)

    def test_sweep_compares_recovery_policies(self):
        sweep = run_sweep(
            "dense-lan-20-faulty",
            RECOVERY_SPECS,
            n_runs=2,
            seed=0,
            config=self.CONFIG,
        )
        assert set(sweep.results) == {
            "n+",
            "n+[recovery=fast-retransmit]",
            "n+[recovery=erasure]",
        }
        for key, runs in sweep.results.items():
            assert len(runs) == 2
            for metrics in runs:
                for link in metrics.links.values():
                    assert 0 <= link.recovered_bits <= link.delivered_bits
                    assert link.packets_dropped >= 0
                    if key != "n+[recovery=erasure]":
                        assert link.recovered_bits == 0
        # totals are addressable by grid key and by any protocol form
        assert sweep.totals_mbps("n+[recovery=erasure]") == sweep.totals_mbps(
            ("n+", {"recovery": "erasure"})
        )

    def test_bare_name_and_default_spec_share_cache_cells(self, tmp_path):
        config = SimulationConfig(duration_us=8_000.0, n_subcarriers=8)
        first = run_sweep(
            "three-pair", ["n+"], n_runs=1, config=config, cache_dir=tmp_path
        )
        assert first.cache_misses == 1
        second = run_sweep(
            "three-pair",
            [ProtocolSpec("n+", {"retry_cap": 7})],
            n_runs=1,
            config=config,
            cache_dir=tmp_path,
        )
        assert second.cache_hits == 1 and second.cache_misses == 0
        cache = SweepCache(tmp_path)
        assert cache.cell_key("three-pair", "n+", 0, config) == cache.cell_key(
            "three-pair", ProtocolSpec("n+"), 0, config
        )
        assert cache.cell_key("three-pair", "n+", 0, config) != cache.cell_key(
            "three-pair", "n+[recovery=erasure]", 0, config
        )

    def test_invalid_specs_fail_before_any_simulation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="registered variants"):
            run_sweep("three-pair", ["aloha"], n_runs=1, config=self.CONFIG)
        with pytest.raises(ConfigurationError, match="known parameters"):
            run_sweep(
                "three-pair", ["n+[window=3]"], n_runs=1, config=self.CONFIG
            )
        with pytest.raises(ConfigurationError, match="duplicate protocol"):
            run_sweep(
                "three-pair",
                ["n+", ProtocolSpec("n+", {"retry_cap": 7})],
                n_runs=1,
                config=self.CONFIG,
            )
        assert len(SweepCache(tmp_path)) == 0

    def test_run_many_rejects_duplicate_specs(self):
        with pytest.raises(ConfigurationError, match="duplicate protocol"):
            run_many(
                three_pair_scenario,
                ["csma", ("csma", {})],
                n_runs=1,
                config=self.CONFIG,
            )
