"""Tests for the batched network-construction pipeline.

The load-bearing guarantee: the batched draws -- grouped tap scaling, one
stacked FFT per antenna-shape group -- are *bit-identical* to the kept
per-pair reference loop, for every antenna mix, with and without forced
link SNRs, all the way down to the post-draw generator state (so every
downstream draw, and therefore every simulated metric, is unchanged).
"""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, frequency_response_batch
from repro.channel.testbed import default_testbed, dense_testbed
from repro.exceptions import ConfigurationError
from repro.sim.network import Network, _subcarrier_bins
from repro.sim.runner import SimulationConfig, run_simulation
from repro.sim.scenarios import (
    custom_pairs_scenario,
    dense_lan_scenario,
    three_pair_scenario,
)


def _build_both(scenario, seed, **kwargs):
    rng_batched = np.random.default_rng(seed)
    rng_reference = np.random.default_rng(seed)
    batched = Network(
        scenario.stations, scenario.pairs, rng_batched, channel_draws="batched", **kwargs
    )
    reference = Network(
        scenario.stations,
        scenario.pairs,
        rng_reference,
        channel_draws="per-pair",
        **kwargs,
    )
    return batched, reference, rng_batched, rng_reference


def _assert_identical(batched, reference, rng_batched, rng_reference):
    assert set(batched.channels.pairs()) == set(reference.channels.pairs())
    for a, b in reference.channels.pairs():
        for tx, rx in ((a, b), (b, a)):
            assert batched.link_snr_db(tx, rx) == reference.link_snr_db(tx, rx)
            assert np.array_equal(
                batched.true_channel(tx, rx), reference.true_channel(tx, rx)
            ), (tx, rx)
    # Both paths consumed exactly the same random numbers, so everything
    # drawn afterwards (estimation noise fallback, MAC draws) agrees too.
    assert rng_batched.bit_generator.state == rng_reference.bit_generator.state


class TestBatchedDrawsBitIdentical:
    @pytest.mark.parametrize(
        "antenna_counts",
        [[1, 1], [2, 2], [3, 3, 3], [1, 2, 3], [3, 1, 2, 2, 1]],
    )
    def test_antenna_mixes(self, antenna_counts):
        scenario = custom_pairs_scenario(antenna_counts)
        _assert_identical(*_build_both(scenario, seed=3, n_subcarriers=8))

    def test_forced_snr_links(self):
        scenario = three_pair_scenario()
        forced = {(0, 1): 12.0, (2, 3): 25.0, (5, 4): 7.5}
        _assert_identical(
            *_build_both(scenario, seed=5, n_subcarriers=8, forced_link_snrs_db=forced)
        )

    def test_dense_lan_on_dense_testbed(self):
        scenario = dense_lan_scenario(n_pairs=8, seed=11)
        _assert_identical(
            *_build_both(scenario, seed=2, n_subcarriers=8, testbed=scenario.make_testbed())
        )

    def test_full_subcarrier_resolution(self):
        scenario = three_pair_scenario()
        _assert_identical(*_build_both(scenario, seed=9, n_subcarriers=64))

    def test_downstream_metrics_identical(self):
        """Same channels -> bit-identical simulated metrics."""
        config = SimulationConfig(duration_us=8_000.0, n_subcarriers=8)
        scenario = three_pair_scenario()
        batched, reference, _, _ = _build_both(scenario, seed=6, n_subcarriers=8)
        on_batched = run_simulation(
            scenario, "n+", seed=21, config=config, network=batched
        )
        on_reference = run_simulation(
            scenario, "n+", seed=21, config=config, network=reference
        )
        assert on_batched.to_dict() == on_reference.to_dict()

    def test_empty_network_still_builds(self):
        """No stations -> no pairs, on every draw path."""
        for mode in ("batched", "per-pair", "grouped"):
            network = Network([], [], np.random.default_rng(0), channel_draws=mode)
            assert network.channels.n_pairs == 0 and network.channels.n_groups == 0

    def test_unknown_draw_mode_rejected(self):
        scenario = three_pair_scenario()
        with pytest.raises(ConfigurationError):
            Network(
                scenario.stations,
                scenario.pairs,
                np.random.default_rng(0),
                channel_draws="turbo",
            )


class TestMultipathBatchPrimitives:
    def test_random_batch_matches_sequential_random(self):
        rng_batch = np.random.default_rng(17)
        rng_seq = np.random.default_rng(17)
        decays = np.array([0.6, 1.5, 3.0, 0.6])
        gains = np.array([1.0, 4.0, 0.25, 10.0])
        taps = MultipathChannel.random_batch(
            n_rx=2,
            n_tx=3,
            rng=rng_batch,
            n_channels=4,
            n_taps=3,
            decay_samples=decays,
            average_gain=gains,
        )
        assert taps.shape == (4, 3, 2, 3)
        for index in range(4):
            channel = MultipathChannel.random(
                n_rx=2,
                n_tx=3,
                rng=rng_seq,
                n_taps=3,
                decay_samples=float(decays[index]),
                average_gain=float(gains[index]),
            )
            assert np.array_equal(taps[index], channel.taps)
        assert rng_batch.bit_generator.state == rng_seq.bit_generator.state

    def test_frequency_response_batch_matches_per_channel(self):
        rng = np.random.default_rng(4)
        taps = MultipathChannel.random_batch(2, 2, rng, n_channels=5, n_taps=4)
        responses = frequency_response_batch(taps, 64)
        assert responses.shape == (5, 64, 2, 2)
        for index in range(5):
            expected = MultipathChannel(taps=taps[index]).frequency_response(64)
            assert np.array_equal(responses[index], expected)

    def test_random_batch_validates_taps_and_raw(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            MultipathChannel.random_batch(1, 1, rng, n_channels=2, n_taps=999)
        with pytest.raises(ConfigurationError):
            MultipathChannel.random_batch(1, 1, rng=None, n_channels=2)
        from repro.exceptions import DimensionError

        with pytest.raises(DimensionError):
            MultipathChannel.random_batch(
                1, 1, rng=None, n_channels=2, n_taps=3, raw=np.zeros((2, 3, 2, 2, 2))
            )


class TestTestbedLinkBatch:
    @pytest.mark.parametrize("testbed_factory", [default_testbed, dense_testbed])
    def test_matches_sequential_links(self, testbed_factory):
        testbed = testbed_factory()
        rng_batch = np.random.default_rng(23)
        rng_seq = np.random.default_rng(23)
        tx_locations = [0, 1, 2, 3]
        rx_locations = [4, 5, 6, 7]
        forced = [None, 18.0, None, 9.0]
        links = testbed.link_batch(
            tx_locations, rx_locations, n_tx=2, n_rx=3, rng=rng_batch, snr_db=forced
        )
        for link, a, b, snr in zip(links, tx_locations, rx_locations, forced):
            expected = testbed.link(a, b, n_tx=2, n_rx=3, rng=rng_seq, snr_db=snr)
            assert link.snr_db == expected.snr_db
            assert np.array_equal(link.channel.taps, expected.channel.taps)
        assert rng_batch.bit_generator.state == rng_seq.bit_generator.state

    def test_mismatched_lengths_rejected(self):
        testbed = default_testbed()
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            testbed.link_batch([0, 1], [2], n_tx=1, n_rx=1, rng=rng)
        with pytest.raises(ConfigurationError):
            testbed.link_batch([0, 1], [2, 3], n_tx=1, n_rx=1, rng=rng, snr_db=[1.0])


class TestSubcarrierBinCache:
    def test_bins_are_cached_and_read_only(self):
        first = _subcarrier_bins(8)
        second = _subcarrier_bins(8)
        assert first is second
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 1

    def test_bins_match_the_ofdm_layout(self):
        from repro.phy.ofdm import OfdmConfig

        data_bins = np.array(OfdmConfig().data_indices)
        assert np.array_equal(_subcarrier_bins(64), data_bins)
        assert np.array_equal(_subcarrier_bins(data_bins.size + 5), data_bins)
        eight = _subcarrier_bins(8)
        assert eight.size == 8
        assert set(eight) <= set(data_bins)
