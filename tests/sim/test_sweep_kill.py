"""Kill-based interruption tests for durable sweeps (slow).

These drive the real failure paths the durable-sweep layer exists for:

* a worker process SIGKILLed mid-cell (the OOM-killer case) -- the
  supervisor must replace it, re-queue the cell, and finish the sweep
  with byte-identical metrics;
* the sweep *parent* interrupted (SIGINT), terminated (SIGTERM) or
  silently killed (SIGKILL) in a real subprocess -- the store must come
  back uncorrupted, with no cell stuck `running`, and `resume=True`
  must complete the sweep byte-identically to an uninterrupted run.

Everything here is marked slow (subprocesses, polling, multi-second
sweeps); `make test-fast` skips it, the full suite runs it.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.sim.runner import SimulationConfig
from repro.sim.store import ResultsStore
from repro.sim.sweep import run_sweep

pytestmark = pytest.mark.slow

FAST = SimulationConfig(duration_us=10_000.0, n_subcarriers=8)

#: Grid of the subprocess-driven parent-kill tests (big enough that the
#: driver is still mid-sweep when the signal lands).
GRID = dict(n_runs=10, seed=4)
GRID_CONFIG = SimulationConfig(duration_us=50_000.0, n_subcarriers=8)
GRID_PROTOCOLS = ["802.11n", "n+"]
GRID_CELLS = GRID["n_runs"] * len(GRID_PROTOCOLS)

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_DRIVER = """
import sys
from repro.sim.runner import SimulationConfig
from repro.sim.sweep import run_sweep

run_sweep(
    "three-pair",
    {protocols!r},
    n_runs={n_runs},
    seed={seed},
    config=SimulationConfig(duration_us={duration_us}, n_subcarriers={n_subcarriers}),
    cache_dir=sys.argv[1],
    workers=2,
)
print("SWEEP-COMPLETED")
"""


def _as_dicts(results):
    return {
        protocol: [m.to_dict() if m is not None else None for m in runs]
        for protocol, runs in results.items()
    }


@pytest.fixture(scope="module")
def uninterrupted_grid():
    """The kill-test grid computed once, without any interruption."""
    result = run_sweep(
        "three-pair", GRID_PROTOCOLS, config=GRID_CONFIG, workers=2, **GRID
    )
    return _as_dicts(result.results)


def _suicidal_build_network(marker_path):
    """A build_network wrapper whose first caller SIGKILLs its process."""
    from repro.sim.runner import build_network as real_build_network

    def building(scenario, run_seed, config):
        try:
            fd = os.open(marker_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return real_build_network(scenario, run_seed, config)
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)

    return building


class TestWorkerKill:
    def test_sigkilled_worker_is_absorbed_and_results_match_serial(
        self, tmp_path, monkeypatch
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork so workers inherit the monkeypatch")
        import repro.sim.sweep as sweep_module

        monkeypatch.setattr(
            sweep_module,
            "build_network",
            _suicidal_build_network(str(tmp_path / "killed-once")),
        )
        result = run_sweep(
            "three-pair",
            ["802.11n", "n+"],
            n_runs=3,
            seed=4,
            config=FAST,
            workers=2,
            cache_dir=tmp_path / "store",
        )
        assert result.failures == []
        assert result.worker_deaths == 1
        monkeypatch.undo()
        serial = run_sweep("three-pair", ["802.11n", "n+"], n_runs=3, seed=4, config=FAST)
        assert _as_dicts(result.results) == _as_dicts(serial.results)
        store = ResultsStore(tmp_path / "store")
        assert store.count("done") == 6
        assert store.count("running") == store.count("pending") == 0
        assert store.get_sweep(result.sweep_id).status == "done"


def _launch_driver(cache_dir):
    script = _DRIVER.format(
        protocols=GRID_PROTOCOLS,
        n_runs=GRID["n_runs"],
        seed=GRID["seed"],
        duration_us=GRID_CONFIG.duration_us,
        n_subcarriers=GRID_CONFIG.n_subcarriers,
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-c", script, str(cache_dir)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for_progress(cache_dir, min_done=2, timeout_s=60.0):
    """Poll the store (WAL allows concurrent reads) until cells finish."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if (Path(cache_dir) / "results.sqlite").exists():
            store = ResultsStore(cache_dir)
            done = store.count("done")
            store.close()
            if done >= min_done:
                return done
        time.sleep(0.02)
    raise AssertionError("driver sweep made no progress before the timeout")


class TestParentKill:
    @pytest.mark.parametrize(
        "signum, expects_checkpoint",
        [
            (signal.SIGINT, True),
            (signal.SIGTERM, True),
            (signal.SIGKILL, False),  # no chance to checkpoint: hard death
        ],
    )
    def test_killed_parent_leaves_a_resumable_store(
        self, tmp_path, uninterrupted_grid, signum, expects_checkpoint
    ):
        proc = _launch_driver(tmp_path)
        try:
            _wait_for_progress(tmp_path)
            proc.send_signal(signum)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode != 0, stderr
        assert "SWEEP-COMPLETED" not in stdout, "sweep finished before the signal"
        if signum == signal.SIGTERM:
            # The handler checkpoints, then re-delivers SIGTERM so the
            # process dies with the genuine signal disposition.
            assert proc.returncode == -signal.SIGTERM

        store = ResultsStore(tmp_path)
        sweeps = store.sweeps()
        assert len(sweeps) == 1
        done_before = store.count("done")
        assert 0 < done_before < GRID_CELLS
        if expects_checkpoint:
            assert sweeps[0].status == "interrupted"
            # The checkpoint flushed every in-flight cell back to pending.
            assert store.count("running") == 0
            assert store.count("pending") == GRID_CELLS - done_before
        else:
            # SIGKILL: no checkpoint could run; whatever state was
            # committed is still consistent, and begin_sweep reclaims
            # any orphaned `running` rows on resume.
            assert sweeps[0].status == "running"
        store.close()

        resumed = run_sweep(
            "three-pair",
            GRID_PROTOCOLS,
            config=GRID_CONFIG,
            cache_dir=tmp_path,
            workers=2,
            resume=True,
            **GRID,
        )
        assert resumed.failures == []
        assert resumed.cache_hits == done_before
        assert resumed.cache_misses == GRID_CELLS - done_before
        assert _as_dicts(resumed.results) == uninterrupted_grid

        store = ResultsStore(tmp_path)
        assert store.get_sweep(resumed.sweep_id).status == "done"
        assert store.count("done") == GRID_CELLS
        assert store.count("running") == store.count("pending") == 0
