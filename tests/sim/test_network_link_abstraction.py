"""Tests for the per-run network and the link abstraction."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mimo.dof import InterferenceStrategy
from repro.phy.rates import MCS_TABLE
from repro.sim.link_abstraction import (
    announced_decoding_subspace,
    interference_directions_at,
    receiver_stream_snrs,
    unprotected_interference_power,
)
from repro.sim.medium import Medium, ScheduledStream
from repro.sim.network import Network
from repro.sim.scenarios import three_pair_scenario


@pytest.fixture
def network(rng):
    scenario = three_pair_scenario()
    return Network(scenario.stations, scenario.pairs, rng, n_subcarriers=8)


def _stream(medium, network, tx, rx, order=0, power=1.0, protected=None, precoder_index=0):
    n_tx = network.station(tx).n_antennas
    precoders = np.zeros((network.n_subcarriers, n_tx), dtype=complex)
    precoders[:, precoder_index % n_tx] = 1.0
    return ScheduledStream(
        stream_id=medium.next_stream_id(),
        transmitter_id=tx,
        receiver_id=rx,
        precoders=precoders,
        power=power,
        mcs=MCS_TABLE[0],
        payload_bits=12000,
        start_us=0.0,
        end_us=1000.0,
        join_order=order,
        protected_receivers=dict(protected or {}),
    )


class TestNetwork:
    def test_channel_shapes(self, network):
        channel = network.true_channel(0, 3)  # tx1 (1 ant) -> rx2 (2 ant)
        assert channel.shape == (8, 2, 1)

    def test_reciprocity_of_true_channels(self, network):
        forward = network.true_channel(0, 3)
        reverse = network.true_channel(3, 0)
        for k in range(8):
            assert np.allclose(reverse[k], forward[k].T)

    def test_estimated_channel_is_close_but_not_exact(self, network):
        true = network.true_channel(2, 3)
        estimate = network.estimated_channel(2, 3)
        assert not np.allclose(estimate, true)
        relative = np.linalg.norm(estimate - true) / np.linalg.norm(true)
        assert relative < 0.2

    def test_self_channel_rejected(self, network):
        with pytest.raises(ConfigurationError):
            network.true_channel(1, 1)

    def test_station_and_pair_lookup(self, network):
        assert network.station(4).n_antennas == 3
        assert network.pair_for_transmitter(4).name == "tx3->rx3"
        with pytest.raises(ConfigurationError):
            network.pair_for_transmitter(1)

    def test_forced_link_snr(self, rng):
        scenario = three_pair_scenario()
        network = Network(
            scenario.stations,
            scenario.pairs,
            rng,
            n_subcarriers=8,
            forced_link_snrs_db={(0, 1): 12.0},
        )
        assert network.link_snr_db(0, 1) == pytest.approx(12.0)

    def test_duplicate_station_ids_rejected(self, rng):
        from repro.sim.node import Station, TrafficPair

        a = Station(0, 1)
        b = Station(0, 2)
        with pytest.raises(ConfigurationError):
            Network([a, b], [TrafficPair(a, [b])], rng)

    def test_describe_mentions_every_pair(self, network):
        text = network.describe()
        assert "tx1" in text and "tx3" in text


class TestLinkAbstraction:
    def test_single_stream_without_interference(self, network):
        medium = Medium()
        stream = _stream(medium, network, tx=0, rx=1)
        snrs = receiver_stream_snrs(network, 1, [stream], [stream])
        values = snrs[stream.stream_id]
        assert values.shape == (8,)
        # SNR should be in the vicinity of the link budget.
        assert 0.0 < np.mean(values) < 45.0

    def test_projected_interference_reduces_snr(self, network):
        medium = Medium()
        wanted = _stream(medium, network, tx=2, rx=3, order=1)
        interferer = _stream(medium, network, tx=0, rx=1, order=0)
        alone = receiver_stream_snrs(network, 3, [wanted], [wanted])[wanted.stream_id]
        with_interference = receiver_stream_snrs(network, 3, [wanted], [wanted, interferer])[
            wanted.stream_id
        ]
        assert np.mean(with_interference) <= np.mean(alone) + 1e-9

    def test_protected_stream_only_adds_residual_noise(self, network):
        medium = Medium()
        wanted = _stream(medium, network, tx=0, rx=1, order=0)
        joiner = _stream(
            medium,
            network,
            tx=4,
            rx=5,
            order=1,
            protected={1: InterferenceStrategy.NULL},
        )
        alone = receiver_stream_snrs(network, 1, [wanted], [wanted])[wanted.stream_id]
        protected = receiver_stream_snrs(network, 1, [wanted], [wanted, joiner])[wanted.stream_id]
        loss = np.mean(alone) - np.mean(protected)
        assert 0.0 <= loss < 6.0

    def test_unprotected_later_stream_is_catastrophic_for_single_antenna(self, network):
        medium = Medium()
        wanted = _stream(medium, network, tx=0, rx=1, order=0)
        rogue = _stream(medium, network, tx=4, rx=5, order=1)  # no protection
        alone = receiver_stream_snrs(network, 1, [wanted], [wanted])[wanted.stream_id]
        jammed = receiver_stream_snrs(network, 1, [wanted], [wanted, rogue])[wanted.stream_id]
        assert np.mean(jammed) < np.mean(alone) - 5.0

    def test_nulling_residual_smaller_than_alignment(self, network):
        medium = Medium()
        wanted = _stream(medium, network, tx=0, rx=1, order=0)
        nuller = _stream(
            medium, network, tx=4, rx=5, order=1, protected={1: InterferenceStrategy.NULL}
        )
        aligner = _stream(
            medium, network, tx=4, rx=5, order=1, protected={1: InterferenceStrategy.ALIGN}
        )
        with_null = receiver_stream_snrs(network, 1, [wanted], [wanted, nuller])[wanted.stream_id]
        with_align = receiver_stream_snrs(network, 1, [wanted], [wanted, aligner])[wanted.stream_id]
        assert np.mean(with_null) >= np.mean(with_align)

    def test_unprotected_power_scales_with_stream_power(self, network):
        medium = Medium()
        weak = _stream(medium, network, tx=4, rx=5, power=0.1)
        strong = _stream(medium, network, tx=4, rx=5, power=1.0)
        channel = network.true_channel(4, 1)
        assert unprotected_interference_power(channel, strong, 0) == pytest.approx(
            10 * unprotected_interference_power(channel, weak, 0)
        )

    def test_interference_directions_shape(self, network):
        medium = Medium()
        streams = [_stream(medium, network, tx=0, rx=1), _stream(medium, network, tx=2, rx=3)]
        directions = interference_directions_at(network, 5, streams)
        assert directions.shape == (8, 3, 2)

    def test_announced_subspace_is_orthonormal_and_orthogonal_to_interference(self, network):
        medium = Medium()
        wanted = [_stream(medium, network, tx=2, rx=3, order=1)]
        interference = [_stream(medium, network, tx=0, rx=1, order=0)]
        subspace = announced_decoding_subspace(network, 3, wanted, interference)
        assert subspace.shape == (8, 2, 1)
        directions = interference_directions_at(network, 3, interference)
        for k in range(8):
            basis = subspace[k]
            assert np.allclose(basis.conj().T @ basis, np.eye(1), atol=1e-8)
            assert np.allclose(directions[k].conj().T @ basis, 0, atol=1e-8)

    def test_empty_wanted_list(self, network):
        assert receiver_stream_snrs(network, 1, [], []) == {}
