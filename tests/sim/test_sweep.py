"""Tests for the parallel sweep orchestrator and its results cache.

The load-bearing guarantees:

* a parallel sweep is byte-identical to a serial one (and to
  ``run_many``) for a fixed seed;
* the on-disk cache replays unchanged cells and invalidates on any
  config change;
* the event-driven runner matches the condensed-loop reference bit for
  bit, for saturated and bursty traffic.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.metrics import LinkMetrics, NetworkMetrics
from repro.sim.runner import (
    SimulationConfig,
    _run_simulation_condensed_reference,
    run_many,
    run_simulation,
    simulate_placement,
)
from repro.sim.scenarios import dense_lan_scenario, three_pair_scenario
from repro.sim.store import ResultsStore
from repro.sim.sweep import SweepCache, config_digest, run_sweep, scenario_digest

FAST = SimulationConfig(duration_us=10_000.0, n_subcarriers=8)


def _as_dicts(results):
    return {p: [m.to_dict() for m in runs] for p, runs in results.items()}


class TestRunnerEquivalence:
    """The event-driven loop vs the kept condensed-loop reference."""

    @pytest.mark.parametrize("protocol", ["802.11n", "n+", "beamforming"])
    def test_saturated_traffic_is_bit_identical(self, protocol):
        fast = run_simulation(three_pair_scenario(), protocol, seed=11, config=FAST)
        reference = _run_simulation_condensed_reference(
            three_pair_scenario(), protocol, seed=11, config=FAST
        )
        assert fast.to_dict() == reference.to_dict()

    @pytest.mark.parametrize("rate_pps", [60.0, 250.0])
    def test_bursty_traffic_is_bit_identical(self, rate_pps):
        config = SimulationConfig(
            duration_us=25_000.0, n_subcarriers=8, packet_rate_pps=rate_pps
        )
        fast = run_simulation(three_pair_scenario(), "n+", seed=5, config=config)
        reference = _run_simulation_condensed_reference(
            three_pair_scenario(), "n+", seed=5, config=config
        )
        assert fast.to_dict() == reference.to_dict()

    def test_idle_jumping_skips_empty_airtime(self):
        """A very light load ends with the same elapsed window."""
        config = SimulationConfig(
            duration_us=30_000.0, n_subcarriers=8, packet_rate_pps=20.0
        )
        fast = run_simulation(three_pair_scenario(), "802.11n", seed=9, config=config)
        reference = _run_simulation_condensed_reference(
            three_pair_scenario(), "802.11n", seed=9, config=config
        )
        assert fast.elapsed_us == reference.elapsed_us


class TestSweepDeterminism:
    def test_serial_sweep_matches_run_many(self):
        protocols = ["802.11n", "n+"]
        serial = run_many(three_pair_scenario, protocols, n_runs=3, seed=4, config=FAST)
        sweep = run_sweep("three-pair", protocols, n_runs=3, seed=4, config=FAST, workers=1)
        assert _as_dicts(serial) == _as_dicts(sweep.results)

    def test_parallel_sweep_matches_serial(self):
        protocols = ["802.11n", "n+"]
        serial = run_sweep("three-pair", protocols, n_runs=3, seed=4, config=FAST, workers=1)
        parallel = run_sweep("three-pair", protocols, n_runs=3, seed=4, config=FAST, workers=3)
        assert _as_dicts(serial.results) == _as_dicts(parallel.results)

    def test_simulate_placement_is_self_contained(self):
        """A cell recomputed standalone equals the run_many cell."""
        serial = run_many(three_pair_scenario, ["n+"], n_runs=2, seed=7, config=FAST)
        cell = simulate_placement(three_pair_scenario, "n+", 7 + 1000, config=FAST)
        assert cell.to_dict() == serial["n+"][1].to_dict()

    def test_protocol_results_do_not_depend_on_order(self):
        """Estimation noise has its own stream, so simulating 802.11n
        first (or not at all) leaves the n+ results unchanged."""
        both = run_many(three_pair_scenario, ["802.11n", "n+"], n_runs=2, seed=3, config=FAST)
        only = run_many(three_pair_scenario, ["n+"], n_runs=2, seed=3, config=FAST)
        assert _as_dicts({"n+": both["n+"]}) == _as_dicts(only)

    def test_dense_scenario_sweeps(self):
        config = SimulationConfig(duration_us=3_000.0, n_subcarriers=8)
        sweep = run_sweep("dense-lan-20", ["n+"], n_runs=2, seed=0, config=config, workers=2)
        assert len(sweep.results["n+"]) == 2
        for metrics in sweep.results["n+"]:
            assert len(metrics.links) == 10
            assert metrics.total_throughput_mbps() > 0.0


class TestSweepCache:
    def test_repeat_invocation_hits_cache(self, tmp_path):
        first = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        second = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert first.cache_hits == 0 and first.cache_misses == 2
        assert second.cache_hits == 2 and second.cache_misses == 0
        assert _as_dicts(first.results) == _as_dicts(second.results)

    def test_cache_invalidates_on_config_change(self, tmp_path):
        run_sweep("three-pair", ["n+"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path)
        changed = SimulationConfig(
            duration_us=FAST.duration_us,
            n_subcarriers=FAST.n_subcarriers,
            bitrate_margin_db=FAST.bitrate_margin_db + 1.0,
        )
        rerun = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=changed, cache_dir=tmp_path
        )
        assert rerun.cache_hits == 0 and rerun.cache_misses == 2

    def test_cache_is_per_protocol_and_seed(self, tmp_path):
        run_sweep("three-pair", ["n+"], n_runs=1, seed=4, config=FAST, cache_dir=tmp_path)
        other_protocol = run_sweep(
            "three-pair", ["802.11n"], n_runs=1, seed=4, config=FAST, cache_dir=tmp_path
        )
        other_seed = run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=5, config=FAST, cache_dir=tmp_path
        )
        assert other_protocol.cache_hits == 0
        assert other_seed.cache_hits == 0

    def test_growing_the_sweep_only_computes_new_runs(self, tmp_path):
        run_sweep("three-pair", ["n+"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path)
        grown = run_sweep(
            "three-pair", ["n+"], n_runs=4, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert grown.cache_hits == 2 and grown.cache_misses == 2

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.cell_key("three-pair", "n+", 4, FAST)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.load(key) is None

    def test_factory_scenario_requires_explicit_key(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_sweep(
                three_pair_scenario, ["n+"], n_runs=1, config=FAST, cache_dir=tmp_path
            )
        # With an explicit key it caches like a registered name.
        result = run_sweep(
            three_pair_scenario,
            ["n+"],
            n_runs=1,
            config=FAST,
            cache_dir=tmp_path,
            scenario_key="my-three-pair",
        )
        assert result.cache_misses == 1

    def test_edited_scenario_definition_invalidates_cache(self, tmp_path):
        """Re-registering a structurally different scenario under the same
        name must not replay the old name's cached cells."""
        from repro.sim.scenarios import register_scenario

        register_scenario("cache-probe", lambda: dense_lan_scenario(n_pairs=2, seed=1))
        try:
            first = run_sweep(
                "cache-probe", ["n+"], n_runs=1, config=FAST, cache_dir=tmp_path
            )
            register_scenario(
                "cache-probe",
                lambda: dense_lan_scenario(n_pairs=3, seed=1),
                overwrite=True,
            )
            second = run_sweep(
                "cache-probe", ["n+"], n_runs=1, config=FAST, cache_dir=tmp_path
            )
        finally:
            from repro.sim.scenarios import _SCENARIOS

            _SCENARIOS.pop("cache-probe", None)
        assert first.cache_misses == 1
        assert second.cache_hits == 0 and second.cache_misses == 1

    def test_digest_covers_the_effective_default_testbed(self, monkeypatch):
        """Default-floor scenarios are simulated on ``default_testbed()``;
        the digest must track that *effective* testbed, so an edit to the
        default floor or hardware profile misses the cache instead of
        replaying cells simulated under the old defaults."""
        import dataclasses as dc

        import repro.sim.sweep as sweep_module
        from repro.channel.hardware import HardwareProfile
        from repro.channel.testbed import default_testbed

        scenario = three_pair_scenario()
        assert scenario.make_testbed() is None
        baseline = scenario_digest(scenario)

        # The effective digest equals the digest of the same scenario
        # with the default testbed attached explicitly.
        from repro.sim.scenarios import Scenario

        explicit = Scenario(
            scenario.name,
            scenario.stations,
            scenario.pairs,
            testbed_factory=default_testbed,
        )
        assert scenario_digest(explicit) == baseline

        # An edited default floor changes the digest...
        def edited_floor(hardware=None):
            testbed = default_testbed(hardware)
            return dc.replace(testbed, path_loss_exponent=9.9)

        monkeypatch.setattr(sweep_module, "default_testbed", edited_floor)
        assert scenario_digest(scenario) != baseline

        # ...and so does an edited default HardwareProfile.
        def edited_hardware(hardware=None):
            return default_testbed(
                hardware or HardwareProfile(nulling_suppression_db=1.0)
            )

        monkeypatch.setattr(sweep_module, "default_testbed", edited_hardware)
        assert scenario_digest(scenario) != baseline

    def test_edited_default_testbed_misses_the_cache(self, tmp_path, monkeypatch):
        """Regression for the ROADMAP item: a testbed change must not
        replay stale cached cells for default-floor scenarios."""
        import dataclasses as dc

        import repro.sim.sweep as sweep_module
        from repro.channel.testbed import default_testbed

        first = run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert first.cache_misses == 1

        def edited_floor(hardware=None):
            testbed = default_testbed(hardware)
            return dc.replace(testbed, shadowing_sigma_db=0.1)

        monkeypatch.setattr(sweep_module, "default_testbed", edited_floor)
        rerun = run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert rerun.cache_hits == 0 and rerun.cache_misses == 1

    def test_scenario_digest_tracks_structure(self):
        a = scenario_digest(dense_lan_scenario(n_pairs=2, seed=1))
        b = scenario_digest(dense_lan_scenario(n_pairs=2, seed=1))
        c = scenario_digest(dense_lan_scenario(n_pairs=3, seed=1))
        d = scenario_digest(dense_lan_scenario(n_pairs=2, seed=1, packet_rate_pps=9.0))
        assert a == b
        assert a != c
        assert a != d

    def test_config_digest_changes_with_any_field(self):
        base = config_digest(FAST)
        assert config_digest(SimulationConfig(duration_us=10_000.0, n_subcarriers=8)) == base
        assert config_digest(SimulationConfig(duration_us=10_001.0, n_subcarriers=8)) != base
        assert (
            config_digest(
                SimulationConfig(duration_us=10_000.0, n_subcarriers=8, packet_rate_pps=5.0)
            )
            != base
        )


class TestRunLevelTasks:
    """The parallel sweep ships one task per run: every run's network is
    drawn exactly once, no matter how many protocols are swept."""

    @staticmethod
    def _count_build_network_calls(monkeypatch, **sweep_kwargs):
        import multiprocessing

        import repro.sim.sweep as sweep_module
        from repro.sim.runner import build_network

        calls = multiprocessing.Value("i", 0)

        def counting_build_network(scenario, run_seed, config):
            with calls.get_lock():
                calls.value += 1
            return build_network(scenario, run_seed, config)

        monkeypatch.setattr(sweep_module, "build_network", counting_build_network)
        result = run_sweep("three-pair", ["802.11n", "n+"], **sweep_kwargs)
        return calls.value, result

    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_network_per_run(self, monkeypatch, workers):
        if workers > 1 and "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("needs fork to observe worker-side calls")
        calls, result = self._count_build_network_calls(
            monkeypatch, n_runs=3, seed=4, config=FAST, workers=workers
        )
        assert calls == 3  # one build per run, not one per (run, protocol)
        assert result.n_runs == 3 and len(result.results) == 2

    def test_cached_protocols_do_not_rebuild(self, monkeypatch, tmp_path):
        """A task only covers the protocols that missed the cache; a fully
        cached run draws no network at all."""
        run_sweep(
            "three-pair", ["802.11n"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        calls, result = self._count_build_network_calls(
            monkeypatch, n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert result.cache_hits == 2  # the 802.11n cells replay
        assert result.cache_misses == 2  # the n+ cells simulate
        assert calls == 2  # one network per run with uncached work
        repeat_calls, repeat = self._count_build_network_calls(
            monkeypatch, n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert repeat.cache_hits == 4 and repeat_calls == 0

    def test_worker_rich_sweeps_split_runs_for_concurrency(self, monkeypatch):
        """With more workers than uncached runs, a run's protocols chunk
        across workers (each chunk still drawing its network once), so
        the extra workers are not left idle."""
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("needs fork to observe worker-side calls")
        calls, result = self._count_build_network_calls(
            monkeypatch, n_runs=1, seed=4, config=FAST, workers=4
        )
        # 1 run x 2 protocols, 4 workers: two single-protocol chunks.
        assert calls == 2
        assert result.workers == 2
        serial = run_sweep(
            "three-pair", ["802.11n", "n+"], n_runs=1, seed=4, config=FAST, workers=1
        )
        assert _as_dicts(serial.results) == _as_dicts(result.results)

    def test_run_level_results_match_per_cell_semantics(self):
        """Shipping run-level tasks stays byte-identical to run_many."""
        protocols = ["802.11n", "n+", "beamforming"]
        serial = run_many(three_pair_scenario, protocols, n_runs=2, seed=6, config=FAST)
        parallel = run_sweep(
            "three-pair", protocols, n_runs=2, seed=6, config=FAST, workers=2
        )
        assert _as_dicts(serial) == _as_dicts(parallel.results)


class TestMetricsRoundTrip:
    def test_network_metrics_round_trip(self):
        metrics = run_simulation(three_pair_scenario(), "n+", seed=2, config=FAST)
        clone = NetworkMetrics.from_dict(metrics.to_dict())
        assert clone.to_dict() == metrics.to_dict()
        assert clone.total_throughput_mbps() == metrics.total_throughput_mbps()

    def test_link_metrics_round_trip(self):
        link = LinkMetrics(pair_name="a->b", delivered_bits=12, attempted_bits=24)
        assert LinkMetrics.from_dict(link.to_dict()) == link


class TestDenseScenarios:
    def test_dense_lan_shape(self):
        scenario = dense_lan_scenario(n_pairs=10, seed=20)
        assert len(scenario.stations) == 20
        assert len(scenario.pairs) == 10
        assert scenario.max_antennas >= 2
        counts = {pair.transmitter.n_antennas for pair in scenario.pairs}
        assert counts <= {1, 2, 3}

    def test_dense_lan_is_deterministic_per_seed(self):
        a = dense_lan_scenario(n_pairs=12, seed=1)
        b = dense_lan_scenario(n_pairs=12, seed=1)
        c = dense_lan_scenario(n_pairs=12, seed=2)
        mix = lambda s: [p.transmitter.n_antennas for p in s.pairs]
        assert mix(a) == mix(b)
        assert mix(a) != mix(c) or a.name == c.name  # extremely unlikely to tie

    def test_dense_lan_carries_a_big_enough_testbed(self):
        scenario = dense_lan_scenario(n_pairs=25, seed=50)
        testbed = scenario.make_testbed()
        assert testbed is not None
        assert testbed.n_locations >= len(scenario.stations)

    def test_bursty_variant_suggests_poisson_traffic(self):
        scenario = dense_lan_scenario(n_pairs=5, seed=0, packet_rate_pps=200.0)
        assert scenario.packet_rate_pps == 200.0
        config = SimulationConfig(duration_us=5_000.0, n_subcarriers=8)
        metrics = run_simulation(scenario, "802.11n", seed=1, config=config)
        assert metrics.elapsed_us >= config.duration_us

    def test_config_rate_overrides_scenario_hint(self):
        scenario = dense_lan_scenario(n_pairs=3, seed=0, packet_rate_pps=1.0)
        # With the hint (1 pps) almost nothing is delivered...
        hinted = run_simulation(
            scenario,
            "802.11n",
            seed=1,
            config=SimulationConfig(duration_us=5_000.0, n_subcarriers=8),
        )
        # ...while packet_rate_pps=0 explicitly forces saturated sources.
        busy = run_simulation(
            scenario,
            "802.11n",
            seed=1,
            config=SimulationConfig(
                duration_us=5_000.0, n_subcarriers=8, packet_rate_pps=0.0
            ),
        )
        assert busy.total_throughput_mbps() > hinted.total_throughput_mbps()

    def test_nonpositive_poisson_rate_is_rejected(self):
        import numpy as np

        from repro.sim.traffic import PoissonSource

        with pytest.raises(ConfigurationError):
            PoissonSource(0, 1, rate_packets_per_second=0.0, rng=np.random.default_rng(0))


class TestSchemaBoundary:
    """The CACHE_SCHEMA_VERSION 7 bump (guarded numerics + validation digest).

    Cells written under an older schema must be *missed* -- recomputed
    under the current semantics -- never replayed; and ``channel_draws``
    must be part of both the scenario and the config digests, because
    selecting a different draw contract changes every seeded channel.
    """

    def test_old_cached_cells_are_missed_after_the_bump(self, tmp_path, monkeypatch):
        import repro.sim.sweep as sweep_module

        assert sweep_module.CACHE_SCHEMA_VERSION == 7

        # Populate the cache as a previous-schema writer would have keyed it.
        monkeypatch.setattr(sweep_module, "CACHE_SCHEMA_VERSION", 6)
        old = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert old.cache_misses == 2 and len(ResultsStore(tmp_path)) == 2

        # Back on the real schema: every old cell is a miss, not a replay.
        monkeypatch.undo()
        assert sweep_module.CACHE_SCHEMA_VERSION == 7
        bumped = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert bumped.cache_hits == 0 and bumped.cache_misses == 2
        # The recomputed cells are correct (identical to an uncached sweep)
        # and were re-stored under the v7 keys next to the stale v6 rows.
        fresh = run_sweep("three-pair", ["n+"], n_runs=2, seed=4, config=FAST)
        assert _as_dicts(bumped.results) == _as_dicts(fresh.results)
        assert len(ResultsStore(tmp_path)) == 4

    def test_cell_keys_differ_across_schema_versions(self, tmp_path, monkeypatch):
        import repro.sim.sweep as sweep_module

        cache = SweepCache(tmp_path)
        v7_key = cache.cell_key("three-pair", "n+", 4, FAST)
        monkeypatch.setattr(sweep_module, "CACHE_SCHEMA_VERSION", 6)
        v6_key = cache.cell_key("three-pair", "n+", 4, FAST)
        assert v7_key != v6_key

    def test_scenario_digest_covers_channel_draws(self):
        import dataclasses as dc

        base = dense_lan_scenario(n_pairs=2, seed=1)
        assert base.channel_draws is None
        grouped = dc.replace(base, channel_draws="grouped")
        assert scenario_digest(base) != scenario_digest(grouped)
        # The factory's channel_draws parameter feeds the same field.
        assert scenario_digest(
            dense_lan_scenario(n_pairs=2, seed=1, channel_draws="grouped")
        ) == scenario_digest(grouped)

    def test_config_digest_covers_channel_draws(self):
        base = config_digest(FAST)
        grouped = config_digest(
            SimulationConfig(duration_us=10_000.0, n_subcarriers=8, channel_draws="grouped")
        )
        assert grouped != base


def _crash_on_seed(run_seed_to_crash):
    """A build_network wrapper that raises for one placement seed."""
    from repro.sim.runner import build_network as real_build_network

    def crashing(scenario, run_seed, config):
        if run_seed == run_seed_to_crash:
            raise RuntimeError(f"injected crash for run_seed {run_seed}")
        return real_build_network(scenario, run_seed, config)

    return crashing


class TestSweepHardening:
    """run_sweep survives (and reports) failing cells instead of aborting."""

    def test_in_process_failure_is_recorded(self, monkeypatch):
        import repro.sim.sweep as sweep_module
        from repro.sim.runner import placement_seed
        from repro.sim.sweep import FailedCell

        bad_seed = placement_seed(4, 1)
        monkeypatch.setattr(sweep_module, "build_network", _crash_on_seed(bad_seed))
        result = run_sweep(
            "three-pair",
            ["n+", "802.11n"],
            n_runs=3,
            seed=4,
            config=FAST,
            retry_backoff_s=0.0,
        )
        assert result.results["n+"][1] is None
        assert result.results["802.11n"][1] is None
        assert result.results["n+"][0] is not None
        assert sorted(f.protocol for f in result.failures) == ["802.11n", "n+"]
        for failure in result.failures:
            assert isinstance(failure, FailedCell)
            assert failure.run == 1
            assert failure.run_seed == bad_seed
            assert "injected crash" in failure.error
        # aggregates skip the failed cells instead of crashing
        assert len(result.totals_mbps("n+")) == 2
        assert result.link_names()  # found from a surviving cell

    def test_strict_restores_raise_on_failure(self, monkeypatch):
        import repro.sim.sweep as sweep_module
        from repro.exceptions import SimulationError
        from repro.sim.runner import placement_seed

        monkeypatch.setattr(
            sweep_module, "build_network", _crash_on_seed(placement_seed(4, 0))
        )
        with pytest.raises(SimulationError):
            run_sweep(
                "three-pair",
                ["n+"],
                n_runs=1,
                seed=4,
                config=FAST,
                strict=True,
                retry_backoff_s=0.0,
            )

    def test_retry_recovers_from_a_transient_failure(self, monkeypatch):
        import repro.sim.sweep as sweep_module
        from repro.sim.runner import build_network as real_build_network

        calls = {"count": 0}

        def flaky(scenario, run_seed, config):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient")
            return real_build_network(scenario, run_seed, config)

        monkeypatch.setattr(sweep_module, "build_network", flaky)
        clean = run_sweep("three-pair", ["n+"], n_runs=1, seed=4, config=FAST)
        monkeypatch.undo()
        monkeypatch.setattr(sweep_module, "build_network", flaky)
        calls["count"] = 0
        retried = run_sweep(
            "three-pair",
            ["n+"],
            n_runs=1,
            seed=4,
            config=FAST,
            max_retries=1,
            retry_backoff_s=0.0,
        )
        assert not retried.failures
        # a retry is a deterministic replay: identical metrics
        assert _as_dicts(retried.results) == _as_dicts(clean.results)

    def test_parallel_failure_is_recorded(self, monkeypatch):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("needs fork so workers inherit the monkeypatch")
        import repro.sim.sweep as sweep_module
        from repro.sim.runner import placement_seed

        bad_seed = placement_seed(4, 1)
        monkeypatch.setattr(sweep_module, "build_network", _crash_on_seed(bad_seed))
        result = run_sweep(
            "three-pair",
            ["n+"],
            n_runs=3,
            seed=4,
            config=FAST,
            workers=2,
            retry_backoff_s=0.0,
        )
        assert [m is None for m in result.results["n+"]] == [False, True, False]
        assert [f.run for f in result.failures] == [1]

    def test_failed_cells_are_not_cached(self, monkeypatch, tmp_path):
        """A failure leaves no cache entry, so the next sweep recomputes."""
        import repro.sim.sweep as sweep_module
        from repro.sim.runner import placement_seed

        monkeypatch.setattr(
            sweep_module, "build_network", _crash_on_seed(placement_seed(4, 0))
        )
        failed = run_sweep(
            "three-pair",
            ["n+"],
            n_runs=1,
            seed=4,
            config=FAST,
            cache_dir=tmp_path,
            retry_backoff_s=0.0,
        )
        assert failed.failures
        # Failed cells are recorded as `failed`, never as cached results:
        # len() counts only `done` cells and load() replays only those.
        assert len(ResultsStore(tmp_path)) == 0
        monkeypatch.undo()
        recovered = run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert not recovered.failures
        assert recovered.cache_misses == 1
        assert recovered.results["n+"][0] is not None


class TestCacheCrashSafety:
    def _metrics(self):
        return NetworkMetrics(
            elapsed_us=100.0, links={"a->b": LinkMetrics(pair_name="a->b")}
        )

    def test_interrupted_store_leaves_no_entry_and_no_temp(self, tmp_path, monkeypatch):
        """A crash mid-publish (os.replace fails) must not leave a
        truncated entry under the final name, nor a stray temp file."""
        import os as os_module

        cache = SweepCache(tmp_path)
        key = cache.cell_key("three-pair", "n+", 4, FAST)

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish time")

        monkeypatch.setattr("repro.sim.sweep.os.replace", exploding_replace)
        with pytest.raises(OSError):
            cache.store(key, self._metrics(), describe={})
        monkeypatch.undo()
        assert cache.load(key) is None  # miss, not a stale/partial entry
        assert list(tmp_path.glob("*.tmp.*")) == []
        # ...and the cell can be rewritten afterwards
        cache.store(key, self._metrics(), describe={})
        assert cache.load(key) is not None

    def test_truncated_entry_is_a_miss_and_rewritable(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.cell_key("three-pair", "n+", 4, FAST)
        cache.store(key, self._metrics(), describe={})
        full = (tmp_path / f"{key}.json").read_text()
        (tmp_path / f"{key}.json").write_text(full[: len(full) // 2])
        assert cache.load(key) is None
        cache.store(key, self._metrics(), describe={})
        assert cache.load(key) is not None

    def test_entry_with_wrong_shape_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.cell_key("three-pair", "n+", 4, FAST)
        (tmp_path / f"{key}.json").write_text('{"cell": {}}')  # no metrics
        assert cache.load(key) is None
        (tmp_path / f"{key}.json").write_text('{"metrics": {"links": 5}}')
        assert cache.load(key) is None


class TestSchemaV4FaultDigests:
    """Fault parameters are part of every cache key (schema v4)."""

    def test_config_digest_covers_fault_fields(self):
        base = config_digest(FAST)
        profiled = config_digest(
            SimulationConfig(
                duration_us=10_000.0, n_subcarriers=8, fault_profile="mixed"
            )
        )
        traced = config_digest(
            SimulationConfig(
                duration_us=10_000.0, n_subcarriers=8, fault_trace="trace.json"
            )
        )
        assert len({base, profiled, traced}) == 3

    def test_scenario_digest_covers_the_fault_profile(self):
        base = dense_lan_scenario(n_pairs=2, seed=1)
        faulty = dense_lan_scenario(n_pairs=2, seed=1, fault_profile="mixed")
        assert scenario_digest(base) != scenario_digest(faulty)

    def test_scenario_digest_tracks_profile_parameters(self, monkeypatch):
        """Editing a registered profile's numbers invalidates cached
        cells even though the profile *name* is unchanged."""
        import dataclasses as dc

        from repro.sim import faults

        scenario = dense_lan_scenario(n_pairs=2, seed=1, fault_profile="mixed")
        before = scenario_digest(scenario)
        edited = dc.replace(faults.fault_profile("mixed"), fade_rate_per_s=999.0)
        monkeypatch.setitem(faults.FAULT_PROFILES, "mixed", edited)
        assert scenario_digest(scenario) != before

    def test_cell_key_covers_fault_config(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = cache.cell_key("dense-lan-20-faulty", "n+", 4, FAST)
        off = cache.cell_key(
            "dense-lan-20-faulty",
            "n+",
            4,
            SimulationConfig(
                duration_us=10_000.0, n_subcarriers=8, fault_profile="none"
            ),
        )
        assert base != off


class TestDefaultWorkers:
    def test_repro_workers_env_override_wins(self, monkeypatch):
        from repro.sim.sweep import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_repro_workers_is_clamped_to_at_least_one(self, monkeypatch):
        from repro.sim.sweep import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_repro_workers_must_be_an_integer(self, monkeypatch):
        from repro.sim.sweep import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError, match="REPRO_WORKERS"):
            default_workers()

    def test_blank_override_falls_through_to_affinity(self, monkeypatch):
        import os

        from repro.sim.sweep import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "  ")
        expected = max(1, len(os.sched_getaffinity(0)))
        assert default_workers() == expected

    def test_missing_affinity_falls_back_to_cpu_count(self, monkeypatch):
        # macOS/Windows have no os.sched_getaffinity at all
        import os

        from repro.sim import sweep
        from repro.sim.sweep import default_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delattr(sweep.os, "sched_getaffinity", raising=False)
        assert default_workers() == max(1, os.cpu_count() or 1)

    def test_missing_cpu_count_means_one_worker(self, monkeypatch):
        from repro.sim import sweep
        from repro.sim.sweep import default_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delattr(sweep.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(sweep.os, "cpu_count", lambda: None)
        assert default_workers() == 1


class TestRetryBackoff:
    """The backoff sleep is only paid when a retry will actually follow."""

    def test_no_sleep_after_the_final_in_process_attempt(self, monkeypatch):
        import repro.sim.sweep as sweep_module
        from repro.sim.runner import placement_seed

        sleeps = []
        monkeypatch.setattr(
            sweep_module.time, "sleep", lambda s: sleeps.append(s)
        )
        monkeypatch.setattr(
            sweep_module, "build_network", _crash_on_seed(placement_seed(4, 0))
        )
        result = run_sweep(
            "three-pair",
            ["n+"],
            n_runs=1,
            seed=4,
            config=FAST,
            max_retries=2,
            retry_backoff_s=0.25,
        )
        assert result.failures
        # Two retries follow attempts 0 and 1; nothing follows attempt 2,
        # so exactly two backoffs are paid -- not three.
        assert sleeps == [0.25, 0.5]

    def test_zero_retries_never_sleeps(self, monkeypatch):
        import repro.sim.sweep as sweep_module
        from repro.sim.runner import placement_seed

        sleeps = []
        monkeypatch.setattr(
            sweep_module.time, "sleep", lambda s: sleeps.append(s)
        )
        monkeypatch.setattr(
            sweep_module, "build_network", _crash_on_seed(placement_seed(4, 0))
        )
        result = run_sweep(
            "three-pair",
            ["n+"],
            n_runs=1,
            seed=4,
            config=FAST,
            max_retries=0,
            retry_backoff_s=30.0,
        )
        assert result.failures
        assert sleeps == []
