"""Docs staleness checks: the README and architecture docs must not rot.

Three classes of guarantee:

* every ``python`` fenced code block in the docs actually executes
  (small, self-contained snippets -- the quickstart must never break);
* every shell command in ``bash`` fenced blocks refers to files that
  exist, and every ``python -m repro.cli ...`` invocation parses against
  the real argument parser (so renamed commands/flags fail here);
* every repo path named in the layout table and inline backticks exists.

``make docs-check`` runs this module plus the example smoke tests.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = [REPO_ROOT / "README.md", REPO_ROOT / "docs" / "ARCHITECTURE.md"]

_FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)


def _blocks(language: str):
    found = []
    for doc in DOCS:
        for match in _FENCE.finditer(doc.read_text()):
            if match.group(1) == language:
                found.append((doc.name, match.group(2)))
    return found


def test_docs_exist():
    for doc in DOCS:
        assert doc.exists(), f"{doc} is missing"
        assert doc.read_text().strip(), f"{doc} is empty"


def test_python_blocks_execute():
    blocks = _blocks("python")
    assert blocks, "expected at least one python block in the docs"
    for name, source in blocks:
        namespace = {}
        try:
            exec(compile(source, f"<{name} python block>", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure path
            pytest.fail(f"python block in {name} failed: {error}\n---\n{source}")


def _command_lines():
    for name, source in _blocks("bash"):
        for raw in source.splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                yield name, line


def test_bash_blocks_reference_real_files():
    lines = list(_command_lines())
    assert lines, "expected at least one bash block in the docs"
    for name, line in lines:
        parts = shlex.split(line)
        for part in parts:
            # Any token that looks like a repo-relative path must exist.
            if ("/" in part or part.endswith(".py")) and not part.startswith("-"):
                candidate = REPO_ROOT / part
                if part.startswith(("http", "repro.")):
                    continue
                assert candidate.exists(), f"{name}: {line!r} references missing {part!r}"


def test_cli_invocations_parse():
    from repro.cli import build_parser

    parser = build_parser()
    checked = 0
    for name, line in _command_lines():
        parts = shlex.split(line)
        if parts[:3] == ["python", "-m", "repro.cli"]:
            args = [a for a in parts[3:] if a != "--help"]
            try:
                parser.parse_args(args)
            except SystemExit:
                pytest.fail(f"{name}: CLI invocation no longer parses: {line!r}")
            checked += 1
    assert checked >= 5, "expected the README to document several CLI invocations"


def test_cli_sweep_scenarios_in_docs_are_registered():
    """--scenario values mentioned in docs must exist in the registry."""
    from repro.sim.scenarios import available_scenarios

    names = set(available_scenarios())
    for name, line in _command_lines():
        parts = shlex.split(line)
        if "--scenario" in parts:
            value = parts[parts.index("--scenario") + 1]
            assert value in names, f"{name}: scenario {value!r} is not registered"


def test_layout_table_paths_exist():
    readme = (REPO_ROOT / "README.md").read_text()
    paths = re.findall(r"^\| `([^`]+)` \|", readme, flags=re.MULTILINE)
    assert len(paths) >= 8, "the repo layout table looks truncated"
    for path in paths:
        if path.startswith("python"):
            continue
        assert (REPO_ROOT / path).exists(), f"layout table references missing {path!r}"


def test_architecture_named_symbols_exist():
    """Functions/modules the architecture doc leans on must be importable."""
    from repro.experiments.handshake_overhead import _alignment_subspaces_reference  # noqa: F401
    from repro.phy.channel_est import _estimate_mimo_channel_reference  # noqa: F401
    from repro.phy.coding.viterbi import _viterbi_decode_reference  # noqa: F401
    from repro.sim.engine import EventScheduler  # noqa: F401
    from repro.sim.runner import (  # noqa: F401
        _run_simulation_condensed_reference,
        _slot_aligned_idle_end,
        _slot_aligned_idle_end_reference,
        placement_seed,
        simulate_placement,
    )
    from repro.sim.sweep import SweepCache, run_sweep  # noqa: F401
    from repro.channel.testbed import dense_testbed  # noqa: F401
    from repro.sim.network import Network
    from repro.sim.traffic import TrafficStateArrays  # noqa: F401

    assert hasattr(Network, "reseed_estimation_noise")
