"""Equivalence of the batched (stacked, per-subcarrier) linear algebra
against the per-matrix reference functions it replaces in the hot paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.mimo.decoder import post_projection_snr, post_projection_snr_batch
from repro.utils import guarded
from repro.utils.linalg import (
    null_space,
    null_space_batch,
    orthonormal_complement,
    orthonormal_complement_batch,
)

N_SUB = 12


def _stack(rng, n_sub, rows, cols):
    return rng.standard_normal((n_sub, rows, cols)) + 1j * rng.standard_normal(
        (n_sub, rows, cols)
    )


class TestNullSpaceBatch:
    def test_matches_per_matrix_null_space(self, rng):
        stack = _stack(rng, N_SUB, 2, 4)
        batched = null_space_batch(stack, 2)
        for k in range(N_SUB):
            reference = null_space(stack[k])[:, :2]
            assert np.allclose(batched[k], reference)

    def test_empty_constraints_give_identity(self, rng):
        stack = np.zeros((N_SUB, 0, 3), dtype=complex)
        batched = null_space_batch(stack, 2)
        assert np.allclose(batched, np.broadcast_to(np.eye(3)[:, :2], (N_SUB, 3, 2)))

    def test_mixed_ranks_across_the_stack(self, rng):
        # One subcarrier's constraints are rank deficient (duplicated row);
        # the gather must still pick the right null-space columns per entry.
        stack = _stack(rng, N_SUB, 2, 4)
        stack[3, 1] = stack[3, 0]
        batched = null_space_batch(stack, 2)
        for k in range(N_SUB):
            reference = null_space(stack[k])[:, :2]
            assert np.allclose(batched[k], reference)

    def test_too_thin_null_space_raises_with_guards_disabled(self, rng):
        stack = _stack(rng, N_SUB, 3, 4)
        with guarded.guards_disabled():
            with pytest.raises(DimensionError):
                null_space_batch(stack, 2)

    def test_too_thin_null_space_falls_back_under_guards(self, rng):
        # Guards on (the default): the deficit is recorded as a degradation
        # and the call returns the least-constrained directions instead of
        # raising -- the MAC layer turns the recorded event into a link
        # quarantine.
        stack = _stack(rng, N_SUB, 3, 4)
        with guarded.capture_degradations() as capture:
            batched = null_space_batch(stack, 2)
        assert capture.triggered
        assert "null-space-deficit" in capture.events
        assert batched.shape == (N_SUB, 4, 2)
        assert np.isfinite(batched).all()

    def test_vectors_annihilate_constraints(self, rng):
        stack = _stack(rng, N_SUB, 2, 5)
        batched = null_space_batch(stack, 3)
        assert np.allclose(stack @ batched, 0, atol=1e-10)


class TestOrthonormalComplementBatch:
    def test_matches_per_matrix_complement(self, rng):
        stack = _stack(rng, N_SUB, 4, 2)
        batched = orthonormal_complement_batch(stack, 2)
        for k in range(N_SUB):
            reference = orthonormal_complement(stack[k])[:, :2]
            assert np.allclose(batched[k], reference)

    def test_mixed_ranks_across_the_stack(self, rng):
        stack = _stack(rng, N_SUB, 4, 2)
        stack[5, :, 1] = stack[5, :, 0]
        batched = orthonormal_complement_batch(stack, 2)
        for k in range(N_SUB):
            reference = orthonormal_complement(stack[k])[:, :2]
            assert np.allclose(batched[k], reference)

    def test_empty_directions_give_identity(self):
        stack = np.zeros((N_SUB, 3, 0), dtype=complex)
        batched = orthonormal_complement_batch(stack, 3)
        assert np.allclose(batched, np.broadcast_to(np.eye(3), (N_SUB, 3, 3)))

    def test_columns_are_orthogonal_to_input(self, rng):
        stack = _stack(rng, N_SUB, 4, 1)
        batched = orthonormal_complement_batch(stack, 3)
        assert np.allclose(stack.conj().transpose(0, 2, 1) @ batched, 0, atol=1e-10)


class TestPostProjectionSnrBatch:
    def test_matches_per_subcarrier_snr(self, rng):
        wanted = _stack(rng, N_SUB, 3, 2)
        interference = _stack(rng, N_SUB, 3, 1)
        residual = rng.random(N_SUB)
        batched = post_projection_snr_batch(
            wanted, interference, noise_power=0.1, signal_power=2.0,
            residual_interference_power=residual,
        )
        for k in range(N_SUB):
            reference = post_projection_snr(
                wanted[k], interference[k], 0.1, 2.0, float(residual[k])
            )
            assert np.allclose(batched[k], reference)

    def test_no_interference_matches(self, rng):
        wanted = _stack(rng, N_SUB, 3, 3)
        batched = post_projection_snr_batch(wanted, None, noise_power=0.05)
        for k in range(N_SUB):
            assert np.allclose(batched[k], post_projection_snr(wanted[k], None, 0.05))

    def test_overloaded_receiver_gets_zero_snr(self, rng):
        # Interference consumes all but one dimension; two wanted streams
        # cannot be separated and the reference returns zeros.
        wanted = _stack(rng, N_SUB, 2, 2)
        interference = _stack(rng, N_SUB, 2, 1)
        batched = post_projection_snr_batch(wanted, interference, noise_power=0.1)
        assert np.allclose(batched, 0.0)

    def test_degenerate_rank_falls_back_per_subcarrier(self, rng):
        wanted = _stack(rng, N_SUB, 3, 1)
        interference = _stack(rng, N_SUB, 3, 2)
        interference[4, :, 1] = interference[4, :, 0]  # non-uniform rank
        batched = post_projection_snr_batch(wanted, interference, noise_power=0.2)
        for k in range(N_SUB):
            reference = post_projection_snr(wanted[k], interference[k], 0.2)
            assert np.allclose(batched[k], reference)
