"""Tests for the medium-state bookkeeping dataclasses."""

import pytest

from repro.exceptions import MediumAccessError
from repro.mimo.streams import ActiveStream, MediumState, OngoingTransmission


def _transmission(tx_id, stream_ids, receiver_id, start=0.0, end=1000.0):
    streams = [
        ActiveStream(stream_id=s, transmitter_id=tx_id, receiver_id=receiver_id, mcs_index=0)
        for s in stream_ids
    ]
    return OngoingTransmission(
        transmitter_id=tx_id, streams=streams, start_us=start, end_us=end
    )


class TestOngoingTransmission:
    def test_counts_streams_and_receivers(self):
        transmission = _transmission(1, [0, 1], receiver_id=2)
        assert transmission.n_streams == 2
        assert transmission.receiver_ids == [2]

    def test_multiple_receivers_deduplicated_in_order(self):
        streams = [
            ActiveStream(0, 1, 5, 0),
            ActiveStream(1, 1, 6, 0),
            ActiveStream(2, 1, 5, 0),
        ]
        transmission = OngoingTransmission(1, streams, 0.0, 10.0)
        assert transmission.receiver_ids == [5, 6]


class TestMediumState:
    def test_used_dof_counts_streams(self):
        state = MediumState()
        state.add(_transmission(1, [0], 2))
        state.add(_transmission(3, [1, 2], 4))
        assert state.n_used_dof == 3
        assert state.busy

    def test_protected_receivers(self):
        state = MediumState()
        state.add(_transmission(1, [0], 2))
        state.add(_transmission(3, [1], 4))
        assert state.protected_receivers() == [2, 4]

    def test_streams_for_receiver(self):
        state = MediumState()
        state.add(_transmission(1, [0, 1], 2))
        assert len(state.streams_for_receiver(2)) == 2
        assert state.streams_for_receiver(9) == []

    def test_end_of_current_transmissions(self):
        state = MediumState()
        assert state.end_of_current_transmissions_us == 0.0
        state.add(_transmission(1, [0], 2, end=500.0))
        state.add(_transmission(3, [1], 4, end=800.0))
        assert state.end_of_current_transmissions_us == 800.0

    def test_remove_transmitter(self):
        state = MediumState()
        state.add(_transmission(1, [0], 2))
        state.remove_transmitter(1)
        assert not state.busy

    def test_remove_unknown_transmitter_raises(self):
        state = MediumState()
        with pytest.raises(MediumAccessError):
            state.remove_transmitter(42)

    def test_clear(self):
        state = MediumState()
        state.add(_transmission(1, [0], 2))
        state.receiver_subspaces[2] = None
        state.clear()
        assert not state.busy
        assert state.receiver_subspaces == {}
