"""Tests for the general pre-coding solver (Claim 3.5, Eq. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PrecodingError
from repro.mimo.precoder import OwnReceiver, ReceiverConstraint, compute_precoders, max_streams
from repro.utils.linalg import orthonormal_complement


def _random(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestReceiverConstraint:
    def test_nulling_when_no_unwanted_space(self, rng):
        constraint = ReceiverConstraint(channel=_random(rng, (2, 3)))
        assert constraint.is_nulling
        assert constraint.n_constraints == 2

    def test_alignment_constraint_count(self, rng):
        u_perp = orthonormal_complement(_random(rng, (3, 2)))
        constraint = ReceiverConstraint(channel=_random(rng, (3, 4)), u_perp=u_perp)
        assert not constraint.is_nulling
        assert constraint.n_constraints == 1

    def test_mismatched_u_perp_rejected(self, rng):
        from repro.exceptions import DimensionError

        with pytest.raises(DimensionError):
            ReceiverConstraint(channel=_random(rng, (2, 3)), u_perp=_random(rng, (3, 1)))

    def test_max_streams_claim_3_2(self, rng):
        ongoing = [
            ReceiverConstraint(channel=_random(rng, (1, 3))),
            ReceiverConstraint(
                channel=_random(rng, (2, 3)),
                u_perp=orthonormal_complement(_random(rng, (2, 1))),
            ),
        ]
        # One nulling row + one alignment row = 2 constraints; 3 antennas.
        assert max_streams(3, ongoing) == 1


class TestSingleReceiverJoin:
    def test_fig5c_scenario(self, rng):
        """tx3 (3 antennas) joins tx1-rx1 (single antenna): null at rx1 and
        send two streams to rx3."""
        h_rx1 = _random(rng, (1, 3))
        precoders = compute_precoders(3, [ReceiverConstraint(channel=h_rx1)])
        assert len(precoders) == 2
        for v in precoders:
            assert np.allclose(h_rx1 @ v, 0, atol=1e-10)

    def test_fig5b_scenario(self, rng):
        """tx3 joins tx2-rx2 (two antennas fully used): null at both antennas,
        one stream remains."""
        h_rx2 = _random(rng, (2, 3))
        precoders = compute_precoders(3, [ReceiverConstraint(channel=h_rx2)])
        assert len(precoders) == 1
        assert np.allclose(h_rx2 @ precoders[0], 0, atol=1e-10)

    def test_fig5d_scenario(self, rng):
        """tx3 joins tx1 (null) and tx2's receiver rx2 (align): exactly one
        stream, satisfying both constraints."""
        h_rx1 = _random(rng, (1, 3))
        h_rx2 = _random(rng, (2, 3))
        u_perp_rx2 = orthonormal_complement(_random(rng, (2, 1)))
        ongoing = [
            ReceiverConstraint(channel=h_rx1),
            ReceiverConstraint(channel=h_rx2, u_perp=u_perp_rx2),
        ]
        precoders = compute_precoders(3, ongoing)
        assert len(precoders) == 1
        v = precoders[0]
        assert np.allclose(h_rx1 @ v, 0, atol=1e-10)
        # Interference lands inside rx2's unwanted space.
        assert np.allclose(u_perp_rx2.conj().T @ (h_rx2 @ v), 0, atol=1e-10)

    def test_no_degrees_of_freedom_left_raises(self, rng):
        h = _random(rng, (3, 3))
        with pytest.raises(PrecodingError):
            compute_precoders(3, [ReceiverConstraint(channel=h)])

    def test_requesting_too_many_streams_raises(self, rng):
        h = _random(rng, (1, 2))
        with pytest.raises(PrecodingError):
            compute_precoders(2, [ReceiverConstraint(channel=h)], n_streams=2)

    def test_precoders_are_unit_norm(self, rng):
        precoders = compute_precoders(4, [ReceiverConstraint(channel=_random(rng, (2, 4)))])
        for v in precoders:
            assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_idle_medium_returns_full_rank_precoders(self, rng):
        precoders = compute_precoders(3, [], n_streams=3)
        matrix = np.stack(precoders, axis=1)
        assert np.linalg.matrix_rank(matrix) == 3


class TestMultiReceiverEq7:
    def test_fig4_scenario(self, rng):
        """AP2 (3 antennas) joins c1->AP1 and serves c2 and c3 (one stream
        each): the full Eq. 7 with one alignment row at AP1 and one row per
        own client."""
        h_ap1 = _random(rng, (2, 3))
        u_perp_ap1 = orthonormal_complement(_random(rng, (2, 1)))
        h_c2 = _random(rng, (2, 3))
        h_c3 = _random(rng, (2, 3))
        u_perp_c2 = orthonormal_complement(_random(rng, (2, 1)))
        u_perp_c3 = orthonormal_complement(_random(rng, (2, 1)))
        ongoing = [ReceiverConstraint(channel=h_ap1, u_perp=u_perp_ap1)]
        own = [
            OwnReceiver(channel=h_c2, u_perp=u_perp_c2, n_streams=1),
            OwnReceiver(channel=h_c3, u_perp=u_perp_c3, n_streams=1),
        ]
        precoders = compute_precoders(3, ongoing, own)
        assert len(precoders) == 2
        v_c2, v_c3 = precoders
        # Neither stream disturbs AP1's decoding subspace.
        for v in precoders:
            assert np.allclose(u_perp_ap1.conj().T @ (h_ap1 @ v), 0, atol=1e-8)
        # The stream for c2 stays out of c3's decoding subspace and vice versa.
        assert np.allclose(u_perp_c3.conj().T @ (h_c3 @ v_c2), 0, atol=1e-8)
        assert np.allclose(u_perp_c2.conj().T @ (h_c2 @ v_c3), 0, atol=1e-8)
        # Each stream is actually received by its own client.
        assert np.abs(u_perp_c2.conj().T @ (h_c2 @ v_c2)) > 1e-3
        assert np.abs(u_perp_c3.conj().T @ (h_c3 @ v_c3)) > 1e-3

    def test_beamforming_without_ongoing(self, rng):
        """Multi-user beamforming (no ongoing transmissions): 3 streams to
        two 2-antenna clients (2 + 1), each stream invisible to the other
        client's decoding subspace."""
        h_c2 = _random(rng, (2, 3))
        h_c3 = _random(rng, (2, 3))
        own = [
            OwnReceiver(channel=h_c2, u_perp=np.eye(2), n_streams=2),
            OwnReceiver(channel=h_c3, u_perp=np.eye(2)[:, :1], n_streams=1),
        ]
        precoders = compute_precoders(3, [], own)
        assert len(precoders) == 3
        v1, v2, v3 = precoders
        # Streams 1-2 are for c2, stream 3 for c3: stream 3 must vanish in
        # c2's full space rows used by Eq. 7's identity structure.
        leak_c3_at_c2 = np.eye(2).conj().T @ (h_c2 @ v3)
        assert np.allclose(leak_c3_at_c2, 0, atol=1e-8)
        leak_c2_at_c3 = np.eye(2)[:, :1].conj().T @ (h_c3 @ np.stack([v1, v2], axis=1))
        assert np.allclose(leak_c2_at_c3, 0, atol=1e-8)

    def test_own_streams_exceeding_dof_raise(self, rng):
        own = [OwnReceiver(channel=_random(rng, (2, 2)), u_perp=np.eye(2), n_streams=2)]
        ongoing = [ReceiverConstraint(channel=_random(rng, (1, 2)))]
        with pytest.raises(PrecodingError):
            compute_precoders(2, ongoing, own)

    def test_inconsistent_stream_count_raises(self, rng):
        own = [OwnReceiver(channel=_random(rng, (2, 3)), u_perp=np.eye(2)[:, :1], n_streams=1)]
        with pytest.raises(PrecodingError):
            compute_precoders(3, [], own, n_streams=2)

    def test_own_receiver_validation(self, rng):
        with pytest.raises(PrecodingError):
            OwnReceiver(channel=_random(rng, (2, 3)), u_perp=np.eye(2)[:, :1], n_streams=2)

    @given(
        n_tx=st.integers(2, 4),
        n_ongoing_antennas=st.integers(1, 2),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_protection_property(self, n_tx, n_ongoing_antennas, seed):
        """For any random channel, every returned pre-coder must satisfy the
        protection constraints to numerical precision."""
        if n_ongoing_antennas >= n_tx:
            return
        rng = np.random.default_rng(seed)
        h = _random(rng, (n_ongoing_antennas, n_tx))
        precoders = compute_precoders(n_tx, [ReceiverConstraint(channel=h)])
        assert len(precoders) == n_tx - n_ongoing_antennas
        for v in precoders:
            assert np.allclose(h @ v, 0, atol=1e-8)
