"""Tests for degrees-of-freedom accounting (Claims 3.1 and 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.mimo.dof import (
    InterferenceStrategy,
    can_join,
    choose_strategy,
    max_concurrent_streams,
    network_degrees_of_freedom,
)


class TestClaim31:
    def test_fully_loaded_receiver_requires_nulling(self):
        assert choose_strategy(1, 1) is InterferenceStrategy.NULL
        assert choose_strategy(2, 2) is InterferenceStrategy.NULL
        assert choose_strategy(3, 3) is InterferenceStrategy.NULL

    def test_spare_dimensions_allow_alignment(self):
        assert choose_strategy(2, 1) is InterferenceStrategy.ALIGN
        assert choose_strategy(3, 1) is InterferenceStrategy.ALIGN
        assert choose_strategy(3, 2) is InterferenceStrategy.ALIGN

    def test_invalid_stream_counts_rejected(self):
        with pytest.raises(DimensionError):
            choose_strategy(2, 3)
        with pytest.raises(DimensionError):
            choose_strategy(2, 0)


class TestClaim32:
    def test_paper_scenarios(self):
        # Fig. 5(b): 3-antenna tx3 joins a 2-stream transmission -> 1 stream.
        assert max_concurrent_streams(3, 2) == 1
        # Fig. 5(c): tx3 joins a single-antenna transmission -> 2 streams.
        assert max_concurrent_streams(3, 1) == 2
        # Fig. 5(d): tx2 joins tx1 -> 1; tx3 joins tx1+tx2 -> 1.
        assert max_concurrent_streams(2, 1) == 1
        assert max_concurrent_streams(3, 2) == 1

    def test_cannot_go_negative(self):
        assert max_concurrent_streams(2, 5) == 0

    def test_idle_medium(self):
        assert max_concurrent_streams(4, 0) == 4

    def test_can_join_helper(self):
        assert can_join(3, 2)
        assert not can_join(2, 2)
        assert not can_join(1, 1)

    def test_invalid_arguments(self):
        with pytest.raises(DimensionError):
            max_concurrent_streams(0, 1)
        with pytest.raises(DimensionError):
            max_concurrent_streams(2, -1)

    @given(m=st.integers(1, 8), k=st.integers(0, 8))
    @settings(max_examples=64, deadline=None)
    def test_claim_3_2_formula(self, m, k):
        assert max_concurrent_streams(m, k) == max(0, m - k)


class TestNetworkDof:
    def test_equals_max_transmitter_antennas(self):
        assert network_degrees_of_freedom([1, 2, 3]) == 3
        assert network_degrees_of_freedom([2, 2]) == 2

    def test_empty_network(self):
        assert network_degrees_of_freedom([]) == 0
