"""Tests for interference alignment (Claim 3.4 and the §2 three-pair
example)."""

import numpy as np
import pytest

from repro.exceptions import PrecodingError
from repro.mimo.alignment import (
    align_third_transmitter_example,
    alignment_constraint_rows,
    alignment_precoders,
    alignment_residual,
)
from repro.utils.linalg import orthonormal_complement


def _random(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestConstraintRows:
    def test_row_count_equals_wanted_streams(self, rng):
        channel = _random(rng, (3, 4))
        u_perp = orthonormal_complement(_random(rng, (3, 1)))[:, :2]
        rows = alignment_constraint_rows(channel, u_perp)
        assert rows.shape == (2, 4)

    def test_dimension_mismatch_raises(self, rng):
        from repro.exceptions import DimensionError

        with pytest.raises(DimensionError):
            alignment_constraint_rows(_random(rng, (3, 4)), _random(rng, (2, 1)))

    def test_vector_inputs_accepted(self, rng):
        rows = alignment_constraint_rows(_random(rng, 4), _random(rng, 1))
        assert rows.shape == (1, 4)


class TestThirdTransmitterExample:
    def test_nulls_at_rx1_and_aligns_at_rx2(self, rng):
        """The §2 example: tx3 satisfies Eq. 2a (null at rx1) and Eq. 4
        (align with tx1's interference at rx2)."""
        h_rx1 = _random(rng, 3)
        h_rx2 = _random(rng, (2, 3))
        f_tx1 = _random(rng, 2)
        v, L = align_third_transmitter_example(h_rx1, h_rx2, f_tx1)
        assert np.linalg.norm(v) == pytest.approx(1.0)
        # Eq. 2a: no interference at rx1.
        assert abs(np.dot(h_rx1, v)) < 1e-10
        # Eq. 4: the interference at rx2 is parallel to tx1's direction.
        received = h_rx2 @ v
        assert np.allclose(received, L * f_tx1, atol=1e-10)

    def test_rx2_can_still_decode_its_stream(self, rng):
        """After alignment, rx2 sees two independent directions: the combined
        interference (p + L r) and its wanted stream q (the paper's Eq. 3
        discussion)."""
        h_rx1 = _random(rng, 3)
        h_rx2 = _random(rng, (2, 3))
        f_tx1 = _random(rng, 2)  # direction of tx1's symbol p at rx2
        g_tx2 = _random(rng, 2)  # direction of tx2's symbol q at rx2
        v, L = align_third_transmitter_example(h_rx1, h_rx2, f_tx1)
        combined_interference = f_tx1  # p and r are aligned along f_tx1
        matrix = np.stack([combined_interference, g_tx2], axis=1)
        assert np.linalg.matrix_rank(matrix) == 2

    def test_zero_reference_direction_rejected(self, rng):
        with pytest.raises(PrecodingError):
            align_third_transmitter_example(_random(rng, 3), _random(rng, (2, 3)), np.zeros(2))


class TestAlignmentPrecoders:
    def test_constraints_are_satisfied(self, rng):
        channel = _random(rng, (2, 3))
        u_perp = orthonormal_complement(_random(rng, (2, 1)))
        rows = alignment_constraint_rows(channel, u_perp)
        precoders = alignment_precoders([rows], 3)
        assert np.allclose(rows @ precoders, 0, atol=1e-10)

    def test_alignment_uses_fewer_constraints_than_nulling(self, rng):
        """Aligning at a 2-antenna receiver with one wanted stream costs one
        degree of freedom; nulling would cost two."""
        channel = _random(rng, (2, 3))
        u_perp = orthonormal_complement(_random(rng, (2, 1)))
        align_rows = alignment_constraint_rows(channel, u_perp)
        precoders = alignment_precoders([align_rows], 3)
        assert precoders.shape[1] == 2  # 3 antennas - 1 alignment constraint

    def test_too_many_constraints_raise(self, rng):
        rows = _random(rng, (3, 3))
        with pytest.raises(PrecodingError):
            alignment_precoders([rows], 3)

    def test_residual_is_zero_with_true_channels(self, rng):
        channel = _random(rng, (2, 4))
        u_perp = orthonormal_complement(_random(rng, (2, 1)))
        rows = alignment_constraint_rows(channel, u_perp)
        precoders = alignment_precoders([rows], 4)
        assert alignment_residual(channel, u_perp, precoders) < 1e-18

    def test_residual_grows_with_estimation_error(self, rng):
        channel_true = _random(rng, (2, 3))
        u_perp = orthonormal_complement(_random(rng, (2, 1)))
        small = channel_true + 0.01 * _random(rng, (2, 3))
        large = channel_true + 0.1 * _random(rng, (2, 3))
        p_small = alignment_precoders([alignment_constraint_rows(small, u_perp)], 3)
        p_large = alignment_precoders([alignment_constraint_rows(large, u_perp)], 3)
        assert alignment_residual(channel_true, u_perp, p_small) < alignment_residual(
            channel_true, u_perp, p_large
        )
