"""Tests for multi-dimensional carrier sense (§3.2)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.mimo.carrier_sense import MultiDimensionalCarrierSense
from repro.phy.preamble import short_training_field


def _random_vector(rng, n):
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


def _signal_along(direction, n_samples, rng, scale=1.0):
    symbols = rng.standard_normal(n_samples) + 1j * rng.standard_normal(n_samples)
    return scale * np.outer(direction, symbols)


class TestProjection:
    def test_idle_sensor_has_full_dof(self):
        sensor = MultiDimensionalCarrierSense(3)
        assert sensor.remaining_dof == 3
        assert np.allclose(sensor.projection_basis(), np.eye(3))

    def test_each_ongoing_stream_consumes_one_dof(self, rng):
        sensor = MultiDimensionalCarrierSense(3)
        sensor.add_ongoing(_random_vector(rng, 3))
        assert sensor.remaining_dof == 2
        sensor.add_ongoing(_random_vector(rng, 3))
        assert sensor.remaining_dof == 1

    def test_duplicate_direction_counted_once(self, rng):
        sensor = MultiDimensionalCarrierSense(3)
        direction = _random_vector(rng, 3)
        sensor.add_ongoing(direction)
        sensor.add_ongoing(direction * 2.0)
        assert sensor.n_ongoing_streams == 1

    def test_projection_annihilates_ongoing_signal(self, rng):
        sensor = MultiDimensionalCarrierSense(3)
        direction = _random_vector(rng, 3)
        sensor.add_ongoing(direction)
        signal = _signal_along(direction, 200, rng, scale=10.0)
        projected = sensor.project(signal)
        assert projected.shape == (2, 200)
        assert np.max(np.abs(projected)) < 1e-10

    def test_projection_preserves_new_signal(self, rng):
        sensor = MultiDimensionalCarrierSense(3)
        ongoing = _random_vector(rng, 3)
        sensor.add_ongoing(ongoing)
        new_direction = _random_vector(rng, 3)
        new_signal = _signal_along(new_direction, 200, rng)
        projected = sensor.project(new_signal)
        assert np.mean(np.abs(projected) ** 2) > 0.01

    def test_reset_restores_full_space(self, rng):
        sensor = MultiDimensionalCarrierSense(2)
        sensor.add_ongoing(_random_vector(rng, 2))
        sensor.reset()
        assert sensor.remaining_dof == 2

    def test_wrong_dimension_rejected(self, rng):
        sensor = MultiDimensionalCarrierSense(3)
        with pytest.raises(DimensionError):
            sensor.add_ongoing(_random_vector(rng, 2))
        with pytest.raises(DimensionError):
            sensor.project(np.zeros((2, 10)))


class TestSensing:
    def test_sees_idle_when_only_ongoing_transmissions_present(self, rng):
        """The paper's key point: after projection, the ongoing signal looks
        like an idle medium even though the raw power is high."""
        sensor = MultiDimensionalCarrierSense(3, energy_threshold_db=-10.0)
        direction = _random_vector(rng, 3)
        sensor.add_ongoing(direction)
        signal = _signal_along(direction, 500, rng, scale=10.0)
        noise = 1e-3 * (rng.standard_normal((3, 500)) + 1j * rng.standard_normal((3, 500)))
        result = sensor.sense(signal + noise)
        assert not result.busy
        # Without projection the energy detector would scream "busy".
        raw_power_db = 10 * np.log10(np.mean(np.abs(signal) ** 2))
        assert raw_power_db > sensor.energy_threshold_db

    def test_detects_new_transmission_energy(self, rng):
        sensor = MultiDimensionalCarrierSense(3, energy_threshold_db=-10.0)
        ongoing = _random_vector(rng, 3)
        sensor.add_ongoing(ongoing)
        new_direction = _random_vector(rng, 3)
        signal = _signal_along(ongoing, 500, rng, scale=10.0) + _signal_along(
            new_direction, 500, rng, scale=1.0
        )
        result = sensor.sense(signal)
        assert result.busy
        assert result.energy_detected

    def test_preamble_correlation_after_projection(self, rng):
        sensor = MultiDimensionalCarrierSense(3, correlation_threshold=0.5)
        ongoing = _random_vector(rng, 3)
        sensor.add_ongoing(ongoing)
        stf = short_training_field()
        n = 600
        ongoing_signal = _signal_along(ongoing, n, rng, scale=5.0)
        new_direction = _random_vector(rng, 3)
        new_signal = np.zeros((3, n), dtype=complex)
        new_signal[:, 100 : 100 + len(stf)] = np.outer(new_direction, stf)
        noise = 0.05 * (rng.standard_normal((3, n)) + 1j * rng.standard_normal((3, n)))
        result = sensor.sense(ongoing_signal + new_signal + noise, preamble_template=stf)
        assert result.preamble_detected
        silent = sensor.sense(ongoing_signal + noise, preamble_template=stf)
        assert not silent.preamble_detected

    def test_full_house_leaves_no_sensing_dimension(self, rng):
        sensor = MultiDimensionalCarrierSense(2)
        sensor.add_ongoing(_random_vector(rng, 2))
        sensor.add_ongoing(_random_vector(rng, 2))
        assert sensor.remaining_dof == 0
        projected = sensor.project(np.ones((2, 10), dtype=complex))
        assert projected.shape == (0, 10)
