"""Tests for projection/zero-forcing decoding and post-projection SNR."""

import numpy as np
import pytest

from repro.exceptions import DecodingError, DimensionError
from repro.mimo.decoder import (
    post_projection_snr,
    post_projection_snr_db,
    project_and_decode,
    projection_angle,
    zero_forcing_decode,
)


def _random(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestZeroForcing:
    def test_recovers_symbols_without_noise(self, rng):
        h = _random(rng, (3, 2))
        x = _random(rng, (2, 50))
        estimate = zero_forcing_decode(h @ x, h)
        assert np.allclose(estimate, x, atol=1e-10)

    def test_single_vector_input(self, rng):
        h = _random(rng, (2, 2))
        x = _random(rng, 2)
        assert np.allclose(zero_forcing_decode(h @ x, h), x, atol=1e-10)

    def test_rank_deficient_channel_raises(self, rng):
        column = _random(rng, (3, 1))
        h = np.concatenate([column, column], axis=1)
        with pytest.raises(DecodingError):
            zero_forcing_decode(_random(rng, 3), h)

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(DimensionError):
            zero_forcing_decode(_random(rng, 3), _random(rng, (2, 2)))


class TestProjectAndDecode:
    def test_removes_known_interference_exactly(self, rng):
        """The paper's Fig. 2 decoding: project orthogonal to p, solve for q."""
        h_wanted = _random(rng, (2, 1))
        h_interference = _random(rng, (2, 1))
        q = _random(rng, (1, 100))
        p = _random(rng, (1, 100))
        received = h_wanted @ q + h_interference @ p
        estimate = project_and_decode(received, h_wanted, h_interference)
        assert np.allclose(estimate, q, atol=1e-8)

    def test_without_interference_is_plain_zero_forcing(self, rng):
        h = _random(rng, (2, 2))
        x = _random(rng, (2, 10))
        assert np.allclose(project_and_decode(h @ x, h, None), x, atol=1e-10)

    def test_too_much_interference_raises(self, rng):
        h_wanted = _random(rng, (2, 2))
        h_interference = _random(rng, (2, 1))
        with pytest.raises(DecodingError):
            project_and_decode(_random(rng, (2, 5)), h_wanted, h_interference)

    def test_three_antenna_receiver_two_streams_one_interferer(self, rng):
        """Fig. 5(c): rx3 decodes two streams while projecting out tx1."""
        h_wanted = _random(rng, (3, 2))
        h_interference = _random(rng, (3, 1))
        x = _random(rng, (2, 64))
        z = _random(rng, (1, 64))
        received = h_wanted @ x + h_interference @ z
        estimate = project_and_decode(received, h_wanted, h_interference)
        assert np.allclose(estimate, x, atol=1e-8)


class TestPostProjectionSnr:
    def test_matched_filter_bound_without_interference(self, rng):
        h = np.array([[2.0], [0.0]], dtype=complex)
        snr = post_projection_snr(h, None, noise_power=1.0)
        assert snr[0] == pytest.approx(4.0, rel=1e-6)

    def test_interference_reduces_snr(self, rng):
        h_wanted = _random(rng, (3, 1))
        h_interference = _random(rng, (3, 1))
        free = post_projection_snr(h_wanted, None, 1.0)[0]
        constrained = post_projection_snr(h_wanted, h_interference, 1.0)[0]
        assert constrained <= free + 1e-9

    def test_residual_interference_acts_as_noise(self, rng):
        h = _random(rng, (2, 1))
        clean = post_projection_snr(h, None, 1.0)[0]
        degraded = post_projection_snr(h, None, 1.0, residual_interference_power=1.0)[0]
        assert degraded == pytest.approx(clean / 2.0, rel=1e-6)

    def test_zero_when_no_dimensions_left(self, rng):
        h_wanted = _random(rng, (2, 1))
        h_interference = _random(rng, (2, 2))
        snr = post_projection_snr(h_wanted, h_interference, 1.0)
        assert snr[0] == 0.0

    def test_db_version_consistent(self, rng):
        h = _random(rng, (2, 1))
        linear = post_projection_snr(h, None, 1.0)[0]
        db = post_projection_snr_db(h, None, 1.0)[0]
        assert db == pytest.approx(10 * np.log10(linear), abs=1e-9)

    def test_orthogonal_interference_costs_nothing(self):
        h_wanted = np.array([[1.0], [0.0]], dtype=complex)
        h_interference = np.array([[0.0], [1.0]], dtype=complex)
        free = post_projection_snr(h_wanted, None, 1.0)[0]
        constrained = post_projection_snr(h_wanted, h_interference, 1.0)[0]
        assert constrained == pytest.approx(free, rel=1e-9)

    def test_signal_power_scales_linearly(self, rng):
        h = _random(rng, (2, 1))
        low = post_projection_snr(h, None, 1.0, signal_power=1.0)[0]
        high = post_projection_snr(h, None, 1.0, signal_power=10.0)[0]
        assert high == pytest.approx(10 * low, rel=1e-9)


class TestProjectionAngle:
    def test_aligned_direction_gives_zero_angle(self, rng):
        direction = _random(rng, (3, 1))
        assert projection_angle(direction, direction) == pytest.approx(0.0, abs=1e-6)

    def test_orthogonal_direction_gives_right_angle(self):
        wanted = np.array([1.0, 0.0, 0.0])
        interference = np.array([0.0, 1.0, 0.0])
        assert projection_angle(wanted, interference) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_no_interference_gives_right_angle(self, rng):
        assert projection_angle(_random(rng, 3), np.zeros((3, 0))) == pytest.approx(np.pi / 2)

    def test_snr_grows_with_angle(self, rng):
        """Fig. 7: a larger angle between the wanted stream and the
        interference yields a higher post-projection SNR."""
        interference = np.array([[1.0], [0.0]], dtype=complex)
        small_angle = np.array([[0.95], [0.31]], dtype=complex)
        large_angle = np.array([[0.31], [0.95]], dtype=complex)
        snr_small = post_projection_snr(small_angle, interference, 1.0)[0]
        snr_large = post_projection_snr(large_angle, interference, 1.0)[0]
        assert snr_large > snr_small
