"""Tests for the unwanted-space construction."""

import numpy as np
import pytest

from repro.exceptions import PrecodingError
from repro.mimo.subspace import decoding_projection, unwanted_space, validate_unwanted_space
from repro.utils.linalg import is_in_subspace


def _random(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestUnwantedSpace:
    def test_dimensions(self, rng):
        wanted = _random(rng, (3, 1))
        interference = _random(rng, (3, 1))
        unwanted, u_perp = unwanted_space(3, wanted, interference)
        assert unwanted.shape == (3, 2)
        assert u_perp.shape == (3, 1)

    def test_no_spare_dimension_gives_identity(self, rng):
        wanted = _random(rng, (2, 2))
        unwanted, u_perp = unwanted_space(2, wanted)
        assert unwanted.shape == (2, 0)
        assert np.allclose(u_perp, np.eye(2))

    def test_existing_interference_lies_inside_unwanted_space(self, rng):
        wanted = _random(rng, (3, 1))
        interference = _random(rng, (3, 2))
        unwanted, _ = unwanted_space(3, wanted, interference)
        for column in interference.T:
            assert is_in_subspace(column, unwanted)
        assert validate_unwanted_space(unwanted, interference)

    def test_u_and_u_perp_are_orthogonal(self, rng):
        wanted = _random(rng, (4, 2))
        interference = _random(rng, (4, 1))
        unwanted, u_perp = unwanted_space(4, wanted, interference)
        assert np.allclose(unwanted.conj().T @ u_perp, 0, atol=1e-10)

    def test_wanted_streams_remain_separable(self, rng):
        wanted = _random(rng, (3, 2))
        interference = _random(rng, (3, 1))
        _, u_perp = unwanted_space(3, wanted, interference)
        projected = u_perp.conj().T @ wanted
        assert np.linalg.matrix_rank(projected) == 2

    def test_too_much_interference_rejected(self, rng):
        wanted = _random(rng, (3, 2))
        interference = _random(rng, (3, 2))
        with pytest.raises(PrecodingError):
            unwanted_space(3, wanted, interference)

    def test_too_many_wanted_streams_rejected(self, rng):
        with pytest.raises(PrecodingError):
            unwanted_space(2, _random(rng, (2, 3)))

    def test_without_interference_prefers_orthogonal_fill(self, rng):
        """With no interference on the air, the unwanted space should avoid
        the wanted directions so the projection keeps full signal power."""
        wanted = _random(rng, (3, 1))
        unwanted, u_perp = unwanted_space(3, wanted)
        projected_power = np.linalg.norm(u_perp.conj().T @ wanted) ** 2
        assert projected_power == pytest.approx(float(np.linalg.norm(wanted) ** 2), rel=1e-9)

    def test_decoding_projection_matches_complement(self, rng):
        wanted = _random(rng, (3, 1))
        interference = _random(rng, (3, 1))
        unwanted, u_perp = unwanted_space(3, wanted, interference)
        recomputed = decoding_projection(unwanted, 3)
        # Both span the same subspace (orthogonal complement of U).
        assert np.allclose(
            recomputed @ recomputed.conj().T, u_perp @ u_perp.conj().T, atol=1e-10
        )

    def test_decoding_projection_of_empty_unwanted_space(self):
        assert np.allclose(decoding_projection(np.zeros((3, 0)), 3), np.eye(3))

    def test_validate_rejects_outside_interference(self, rng):
        wanted = _random(rng, (3, 1))
        interference = _random(rng, (3, 1))
        unwanted, _ = unwanted_space(3, wanted, interference)
        foreign = _random(rng, (3, 1))
        assert not validate_unwanted_space(unwanted, foreign)
