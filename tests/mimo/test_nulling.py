"""Tests for interference nulling (Claim 3.3 and the §2 examples)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PrecodingError
from repro.mimo.nulling import (
    nulling_constraint_rows,
    nulling_precoders,
    residual_interference,
    two_antenna_nulling_weight,
)


def _random_channel(rng, n_rx, n_tx):
    return rng.standard_normal((n_rx, n_tx)) + 1j * rng.standard_normal((n_rx, n_tx))


class TestTwoAntennaExample:
    def test_alpha_cancels_signal(self, rng):
        """§2: tx2 sends q on antenna 1 and alpha*q on antenna 2; the sum at
        rx1 must vanish."""
        h21, h31 = rng.standard_normal(2) + 1j * rng.standard_normal(2)
        alpha = two_antenna_nulling_weight(h21, h31)
        for q in (1.0, -0.3 + 0.7j, 2.2j):
            assert abs(h21 * q + h31 * alpha * q) < 1e-12

    def test_zero_channel_rejected(self):
        with pytest.raises(PrecodingError):
            two_antenna_nulling_weight(1.0, 0.0)


class TestNullingPrecoders:
    def test_single_receiver_null(self, rng):
        h = _random_channel(rng, 1, 2)
        precoders = nulling_precoders([h], 2)
        assert precoders.shape == (2, 1)
        assert np.allclose(h @ precoders, 0, atol=1e-10)

    def test_multiple_receivers(self, rng):
        h1 = _random_channel(rng, 1, 4)
        h2 = _random_channel(rng, 2, 4)
        precoders = nulling_precoders([h1, h2], 4)
        assert precoders.shape == (4, 1)
        assert np.allclose(h1 @ precoders, 0, atol=1e-10)
        assert np.allclose(h2 @ precoders, 0, atol=1e-10)

    def test_precoders_are_unit_norm(self, rng):
        precoders = nulling_precoders([_random_channel(rng, 1, 3)], 3)
        assert np.allclose(np.linalg.norm(precoders, axis=0), 1.0)

    def test_number_of_streams_matches_claim_3_2(self, rng):
        h = _random_channel(rng, 2, 4)
        precoders = nulling_precoders([h], 4)
        assert precoders.shape[1] == 2

    def test_requesting_too_many_streams_fails(self, rng):
        h = _random_channel(rng, 2, 3)
        with pytest.raises(PrecodingError):
            nulling_precoders([h], 3, n_streams=2)

    def test_nulling_at_every_antenna_is_impossible(self, rng):
        """Eq. 2 of the paper: a 3-antenna transmitter cannot null at three
        receive antennas and still transmit."""
        h1 = _random_channel(rng, 1, 3)
        h2 = _random_channel(rng, 2, 3)
        with pytest.raises(PrecodingError):
            nulling_precoders([h1, h2], 3)

    def test_streams_are_mutually_orthogonal(self, rng):
        h = _random_channel(rng, 1, 4)
        precoders = nulling_precoders([h], 4)
        gram = precoders.conj().T @ precoders
        assert np.allclose(gram, np.eye(precoders.shape[1]), atol=1e-10)

    def test_constraint_rows_are_the_channel(self, rng):
        h = _random_channel(rng, 2, 3)
        assert np.allclose(nulling_constraint_rows(h), h)

    def test_residual_interference_is_zero_for_exact_channel(self, rng):
        h = _random_channel(rng, 1, 2)
        precoders = nulling_precoders([h], 2)
        assert residual_interference(h, precoders) < 1e-20

    def test_residual_interference_with_estimation_error(self, rng):
        """Nulling on a noisy estimate leaves residual power roughly at the
        estimation error level, which is what limits nulling in practice."""
        h_true = _random_channel(rng, 1, 2)
        error = 0.01 * _random_channel(rng, 1, 2)
        precoders = nulling_precoders([h_true + error], 2)
        residual = residual_interference(h_true, precoders)
        full_power = residual_interference(h_true, np.array([[1.0], [0.0]]))
        assert residual < full_power * 1e-2
        assert residual > 0

    @given(n_tx=st.integers(2, 5), n_null=st.integers(1, 3), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_null_space_dimension_property(self, n_tx, n_null, seed):
        if n_null >= n_tx:
            return
        rng = np.random.default_rng(seed)
        h = _random_channel(rng, n_null, n_tx)
        precoders = nulling_precoders([h], n_tx)
        assert precoders.shape == (n_tx, n_tx - n_null)
        assert np.allclose(h @ precoders, 0, atol=1e-8)
