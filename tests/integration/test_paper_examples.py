"""Integration tests reproducing the worked examples of the paper's §2.

These tests exercise the whole pipeline -- channels, pre-coding, the
sample-level transceiver and decoding -- on the exact scenarios of
Figs. 2, 3 and 4.
"""

import numpy as np
import pytest

from repro.channel.models import awgn, complex_gaussian
from repro.mimo.decoder import post_projection_snr_db, project_and_decode
from repro.mimo.nulling import two_antenna_nulling_weight
from repro.mimo.precoder import OwnReceiver, ReceiverConstraint, compute_precoders
from repro.utils.db import db_to_linear
from repro.utils.linalg import orthonormal_complement


def _channel(rng, shape, snr_db=20.0):
    return complex_gaussian(shape, rng, db_to_linear(snr_db))


class TestFig2TwoPairExample:
    """tx2 (2 antennas) joins the single-antenna pair tx1-rx1."""

    def test_symbol_level_story(self, rng):
        # Channels as named in the paper: h_ij from antenna i to antenna j.
        h21, h31 = _channel(rng, 2)  # tx2's antennas -> rx1
        alpha = two_antenna_nulling_weight(h21, h31)
        h12 = _channel(rng, 1)[0]  # tx1 -> rx2 antenna 2
        h13 = _channel(rng, 1)[0]  # tx1 -> rx2 antenna 3
        h22, h32 = _channel(rng, 2)  # tx2 -> rx2 antenna 2
        h23, h33 = _channel(rng, 2)  # tx2 -> rx2 antenna 3

        n_symbols = 200
        p = complex_gaussian(n_symbols, rng, 1.0)  # tx1's symbols
        q = complex_gaussian(n_symbols, rng, 1.0)  # tx2's symbols

        # rx1 hears only p (tx2's signal cancels).
        rx1 = h21 * q + h31 * alpha * q
        assert np.max(np.abs(rx1)) < 1e-9

        # rx2 receives Eq. 1 and solves the 2x2 system for q.
        y2 = h12 * p + (h22 + h32 * alpha) * q
        y3 = h13 * p + (h23 + h33 * alpha) * q
        received = np.stack([y2, y3])
        h_wanted = np.array([[h22 + h32 * alpha], [h23 + h33 * alpha]])
        h_interference = np.array([[h12], [h13]])
        decoded = project_and_decode(received, h_wanted, h_interference)
        assert np.allclose(decoded, q, atol=1e-8)


class TestFig3ThreePairExample:
    """tx3 (3 antennas) joins tx1-rx1 and tx2-rx2 via nulling + alignment."""

    def test_all_three_receivers_decode(self, rng):
        # Ongoing: tx1 (1 antenna) -> rx1 (1 antenna), tx2 (2 ant) -> rx2 (2 ant).
        h_tx1_rx1 = _channel(rng, (1, 1))
        h_tx1_rx2 = _channel(rng, (2, 1))
        h_tx1_rx3 = _channel(rng, (3, 1))
        h_tx2_rx1 = _channel(rng, (1, 2))
        h_tx2_rx2 = _channel(rng, (2, 2))
        h_tx2_rx3 = _channel(rng, (3, 2))
        h_tx3_rx1 = _channel(rng, (1, 3))
        h_tx3_rx2 = _channel(rng, (2, 3))
        h_tx3_rx3 = _channel(rng, (3, 3))

        # tx2 nulls at rx1 (it joined second): one stream, pre-coder w2.
        w2 = compute_precoders(2, [ReceiverConstraint(channel=h_tx2_rx1)])[0]
        # tx3 nulls at rx1 and aligns at rx2 inside rx2's unwanted space.
        rx2_interference = h_tx1_rx2  # direction of p at rx2
        u_perp_rx2 = orthonormal_complement(rx2_interference)[:, :1]
        w3 = compute_precoders(
            3,
            [
                ReceiverConstraint(channel=h_tx3_rx1),
                ReceiverConstraint(channel=h_tx3_rx2, u_perp=u_perp_rx2),
            ],
        )[0]

        n = 500
        p = complex_gaussian(n, rng, 1.0)
        q = complex_gaussian(n, rng, 1.0)
        r = complex_gaussian(n, rng, 1.0)
        noise_power = 1e-4

        # rx1: only tx1's signal should remain.
        rx1 = (
            h_tx1_rx1[:, 0] * p
            + (h_tx2_rx1 @ w2) * q
            + (h_tx3_rx1 @ w3) * r
        )
        rx1 = awgn(rx1, noise_power, rng)
        wanted_power = np.mean(np.abs(h_tx1_rx1[:, 0] * p) ** 2)
        residual_power = np.mean(np.abs(rx1 - h_tx1_rx1[:, 0] * p) ** 2)
        assert 10 * np.log10(wanted_power / residual_power) > 20.0

        # rx2: decodes q after projecting out the (aligned) interference.
        rx2 = (
            h_tx1_rx2 @ p.reshape(1, -1)
            + (h_tx2_rx2 @ w2).reshape(2, 1) @ q.reshape(1, -1)
            + (h_tx3_rx2 @ w3).reshape(2, 1) @ r.reshape(1, -1)
        )
        rx2 = awgn(rx2, noise_power, rng)
        decoded_q = project_and_decode(
            rx2, (h_tx2_rx2 @ w2).reshape(2, 1), h_tx1_rx2
        )
        error = np.mean(np.abs(decoded_q - q) ** 2)
        assert error < 0.05

        # rx3: decodes r after projecting out p and q directions.
        rx3 = (
            h_tx1_rx3 @ p.reshape(1, -1)
            + (h_tx2_rx3 @ w2).reshape(3, 1) @ q.reshape(1, -1)
            + (h_tx3_rx3 @ w3).reshape(3, 1) @ r.reshape(1, -1)
        )
        rx3 = awgn(rx3, noise_power, rng)
        interference_at_rx3 = np.concatenate(
            [h_tx1_rx3, (h_tx2_rx3 @ w2).reshape(3, 1)], axis=1
        )
        decoded_r = project_and_decode(
            rx3, (h_tx3_rx3 @ w3).reshape(3, 1), interference_at_rx3
        )
        assert np.mean(np.abs(decoded_r - r) ** 2) < 0.05

    def test_alignment_is_necessary(self, rng):
        """Nulling alone at rx1 and rx2 consumes all three antennas (Eq. 2)."""
        from repro.exceptions import PrecodingError
        from repro.mimo.nulling import nulling_precoders

        h_rx1 = _channel(rng, (1, 3))
        h_rx2 = _channel(rng, (2, 3))
        with pytest.raises(PrecodingError):
            nulling_precoders([h_rx1, h_rx2], 3)


class TestFig4HeterogeneousExample:
    """AP2 (3 antennas) serves two 2-antenna clients while protecting AP1."""

    def test_all_receivers_protected_and_served(self, rng):
        h_c1_ap1 = _channel(rng, (2, 1))  # ongoing uplink signal direction at AP1
        h_ap2_ap1 = _channel(rng, (2, 3))
        h_ap2_c2 = _channel(rng, (2, 3))
        h_ap2_c3 = _channel(rng, (2, 3))
        h_c1_c2 = _channel(rng, (2, 1))
        h_c1_c3 = _channel(rng, (2, 1))

        # AP1 keeps receiving c1: its decoding direction is orthogonal to
        # nothing yet (c1 is the wanted signal), so AP2 must align its two
        # streams inside AP1's unwanted space (orthogonal to AP1's decoding
        # direction for c1).
        u_perp_ap1 = h_c1_ap1 / np.linalg.norm(h_c1_ap1)
        u_perp_c2 = orthonormal_complement(h_c1_c2)[:, :1]
        u_perp_c3 = orthonormal_complement(h_c1_c3)[:, :1]

        precoders = compute_precoders(
            3,
            [ReceiverConstraint(channel=h_ap2_ap1, u_perp=u_perp_ap1)],
            [
                OwnReceiver(channel=h_ap2_c2, u_perp=u_perp_c2, n_streams=1),
                OwnReceiver(channel=h_ap2_c3, u_perp=u_perp_c3, n_streams=1),
            ],
        )
        v2, v3 = precoders

        # AP1's decoding direction sees no interference from either stream.
        for v in (v2, v3):
            leak = u_perp_ap1.conj().T @ (h_ap2_ap1 @ v)
            assert np.max(np.abs(leak)) < 1e-8

        # c2 can decode p2: its post-projection SNR is healthy once p1 and
        # p3 are accounted for (p3 is aligned along p1 at c2).
        snr_c2 = post_projection_snr_db(
            (h_ap2_c2 @ v2).reshape(2, 1), h_c1_c2, noise_power=1e-3
        )[0]
        assert snr_c2 > 10.0
        leak_p3_at_c2 = u_perp_c2.conj().T @ (h_ap2_c2 @ v3)
        assert np.max(np.abs(leak_p3_at_c2)) < 1e-8
