"""Tests for bit packing, CRC and payload helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.utils.bits import (
    append_crc32,
    bit_error_rate,
    bit_errors,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    check_crc32,
    crc32,
    int_to_bits,
    random_bits,
    random_payload,
)


class TestBitPacking:
    def test_bytes_to_bits_msb_first(self):
        bits = bytes_to_bits(b"\x80\x01")
        assert list(bits) == [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]

    def test_roundtrip(self, rng):
        data = random_payload(64, rng)
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bits_to_bytes_requires_multiple_of_eight(self):
        with pytest.raises(DimensionError):
            bits_to_bytes(np.ones(7, dtype=np.int8))

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestIntBits:
    def test_int_to_bits_and_back(self):
        assert bits_to_int(int_to_bits(42, 8)) == 42

    def test_width_too_small_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)

    def test_negative_value_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 8)

    @given(st.integers(0, 2**20 - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, 20)) == value


class TestCrc:
    def test_crc_detects_single_bit_error(self, rng):
        payload = random_bits(200, rng)
        frame = append_crc32(payload)
        assert check_crc32(frame)
        corrupted = frame.copy()
        corrupted[10] ^= 1
        assert not check_crc32(corrupted)

    def test_crc_detects_error_in_checksum(self, rng):
        frame = append_crc32(random_bits(64, rng))
        corrupted = frame.copy()
        corrupted[-1] ^= 1
        assert not check_crc32(corrupted)

    def test_crc_of_empty_payload(self):
        frame = append_crc32(np.zeros(0, dtype=np.int8))
        assert frame.size == 32
        assert check_crc32(frame)

    def test_too_short_frame_fails_check(self):
        assert not check_crc32(np.ones(16, dtype=np.int8))

    def test_crc_is_deterministic(self, rng):
        payload = random_bits(100, rng)
        assert np.array_equal(crc32(payload), crc32(payload))

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200), st.integers(0, 199))
    @settings(max_examples=60, deadline=None)
    def test_any_single_flip_is_detected(self, bits, position):
        payload = np.array(bits, dtype=np.int8)
        frame = append_crc32(payload)
        index = position % payload.size
        corrupted = frame.copy()
        corrupted[index] ^= 1
        assert not check_crc32(corrupted)


class TestBitErrors:
    def test_counts_differences(self):
        a = np.array([0, 1, 1, 0], dtype=np.int8)
        b = np.array([0, 0, 1, 1], dtype=np.int8)
        assert bit_errors(a, b) == 2
        assert bit_error_rate(a, b) == pytest.approx(0.5)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(DimensionError):
            bit_errors(np.zeros(3, dtype=np.int8), np.zeros(4, dtype=np.int8))

    def test_empty_arrays(self):
        assert bit_error_rate(np.array([]), np.array([])) == 0.0

    def test_random_bits_are_binary(self, rng):
        bits = random_bits(1000, rng)
        assert set(np.unique(bits)).issubset({0, 1})
