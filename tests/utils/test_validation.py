"""Tests for the argument-validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionError
from repro.utils.validation import (
    as_channel_matrix,
    require_antenna_count,
    require_in_range,
    require_matrix_shape,
    require_positive,
    require_positive_int,
)


class TestScalarValidators:
    def test_positive_int_accepts_int(self):
        assert require_positive_int(3, "x") == 3

    def test_positive_int_rejects_zero_and_negative(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(0, "x")
        with pytest.raises(ConfigurationError):
            require_positive_int(-1, "x")

    def test_positive_int_rejects_bool_and_float(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(True, "x")
        with pytest.raises(ConfigurationError):
            require_positive_int(2.5, "x")

    def test_positive_float(self):
        assert require_positive(0.5, "x") == 0.5
        with pytest.raises(ConfigurationError):
            require_positive(0.0, "x")

    def test_in_range(self):
        assert require_in_range(5, 0, 10, "x") == 5.0
        with pytest.raises(ConfigurationError):
            require_in_range(11, 0, 10, "x")

    def test_antenna_count_limits(self):
        assert require_antenna_count(4, "antennas") == 4
        with pytest.raises(ConfigurationError):
            require_antenna_count(9, "antennas")


class TestMatrixValidators:
    def test_matrix_shape_enforced(self, rng):
        matrix = rng.standard_normal((2, 3))
        assert require_matrix_shape(matrix, (2, 3), "H").shape == (2, 3)
        with pytest.raises(DimensionError):
            require_matrix_shape(matrix, (3, 2), "H")

    def test_channel_matrix_reshapes_vectors(self, rng):
        vector = rng.standard_normal(3)
        assert as_channel_matrix(vector, 1, 3).shape == (1, 3)
        assert as_channel_matrix(vector, 3, 1).shape == (3, 1)

    def test_channel_matrix_scalar(self):
        assert as_channel_matrix(2.0, 1, 1).shape == (1, 1)

    def test_channel_matrix_wrong_shape_raises(self, rng):
        with pytest.raises(DimensionError):
            as_channel_matrix(rng.standard_normal((2, 2)), 3, 2)
