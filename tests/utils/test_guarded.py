"""Property/fuzz tests for the guarded numerical kernels.

The contract under test (see :mod:`repro.utils.guarded`):

* guarded wrappers never raise and never return non-finite values, on
  *any* input -- including seeded near-singular and NaN/Inf-poisoned
  stacks like the ones a deep fade produces;
* on well-conditioned finite stacks the wrappers are bit-identical to
  the raw ``np.linalg`` calls (and match the per-subcarrier reference
  fallbacks);
* every fallback is recorded, and only fallbacks are recorded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.utils import guarded
from repro.utils.linalg import (
    null_space,
    null_space_batch,
    orthonormal_complement,
    orthonormal_complement_batch,
)

N_SUB = 8


def _stack(rng, n_sub, rows, cols):
    return rng.standard_normal((n_sub, rows, cols)) + 1j * rng.standard_normal(
        (n_sub, rows, cols)
    )


def _poison(rng, stack):
    """Drive a healthy stack into the regimes the guards exist for."""
    bad = np.array(stack, copy=True)
    n = bad.shape[0]
    # a nearly-singular matrix, a rank-deficient matrix, an all-zero
    # matrix, a NaN entry and an Inf entry, at seeded positions (the
    # scaling happens first, while every entry is still finite)
    bad[rng.integers(n)] *= 1e-160
    k = rng.integers(n)
    if bad.shape[1] > 1:
        bad[k, 1] = bad[k, 0]
    bad[rng.integers(n)] = 0.0
    bad[rng.integers(n), 0, 0] = np.nan
    bad[rng.integers(n), -1, -1] = np.inf
    return bad


class TestHappyPathBitIdentity:
    def test_sanitize_returns_the_same_object_when_finite(self, rng):
        stack = _stack(rng, N_SUB, 3, 3)
        clean, mask = guarded.sanitize_stack(stack)
        assert clean is stack
        assert not mask.any()

    def test_solve_matches_raw_solve_exactly(self, rng):
        a = _stack(rng, N_SUB, 3, 3) + 3.0 * np.eye(3)
        b = _stack(rng, N_SUB, 3, 2)
        out, degraded = guarded.solve_stack(a, b)
        assert not degraded
        assert np.array_equal(out, np.linalg.solve(a, b))

    def test_pinv_matches_raw_pinv_exactly(self, rng):
        stack = _stack(rng, N_SUB, 4, 2)
        out, degraded = guarded.pinv_stack(stack, rcond=1e-15)
        assert not degraded
        assert np.array_equal(out, np.linalg.pinv(stack, rcond=1e-15))

    def test_svd_matches_raw_svd_exactly(self, rng):
        stack = _stack(rng, N_SUB, 3, 4)
        u, s, vh = guarded.svd_stack(stack, full_matrices=False)
        ru, rs, rvh = np.linalg.svd(stack, full_matrices=False)
        assert np.array_equal(u, ru)
        assert np.array_equal(s, rs)
        assert np.array_equal(vh, rvh)

    def test_happy_path_notes_no_degradation(self, rng):
        stack = _stack(rng, N_SUB, 3, 3) + 3.0 * np.eye(3)
        with guarded.capture_degradations() as capture:
            guarded.solve_stack(stack, _stack(rng, N_SUB, 3, 1))
            guarded.pinv_stack(stack)
            guarded.svd_stack(stack)
        assert not capture.triggered


class TestGuardedFallbacks:
    def test_nan_poisoned_solve_is_finite_and_flagged(self, rng):
        a = _stack(rng, N_SUB, 3, 3)
        a[2, 0, 0] = np.nan
        b = _stack(rng, N_SUB, 3, 1)
        with guarded.capture_degradations() as capture:
            out, degraded = guarded.solve_stack(a, b)
        assert degraded
        assert "nonfinite-input" in capture.events
        assert np.isfinite(out).all()

    def test_singular_solve_falls_back_to_pinned_pinv(self, rng):
        a = np.zeros((N_SUB, 3, 3), dtype=complex)
        b = _stack(rng, N_SUB, 3, 1)
        with guarded.capture_degradations() as capture:
            out, degraded = guarded.solve_stack(a, b)
        assert degraded
        assert "singular-solve" in capture.events
        # pinv of the zero matrix is the zero matrix: exact fallback
        assert np.array_equal(out, np.zeros_like(b))

    def test_ill_conditioned_mask(self):
        s = np.array([[1.0, 1e-14], [1.0, 0.5], [0.0, 0.0]])
        mask = guarded.ill_conditioned(s)
        # all-zero matrices are exact, not ill-conditioned
        assert mask.tolist() == [True, False, False]

    def test_nonfinite_matrices_flags_per_member(self, rng):
        stack = _stack(rng, 4, 2, 2)
        stack[1, 0, 0] = np.inf
        stack[3, 1, 1] = np.nan
        assert guarded.nonfinite_matrices(stack).tolist() == [
            False, True, False, True,
        ]


class TestCaptureAndState:
    def test_captures_nest(self):
        with guarded.capture_degradations() as outer:
            with guarded.capture_degradations() as inner:
                guarded.note_degradation("probe")
            guarded.note_degradation("outer-only")
        assert inner.events == ["probe"]
        assert outer.events == ["probe", "outer-only"]

    def test_degradations_total_is_monotone(self):
        before = guarded.degradations_total()
        guarded.note_degradation("probe")
        assert guarded.degradations_total() == before + 1

    def test_guards_disabled_restores_previous_state(self):
        assert guarded.guards_enabled()
        with guarded.guards_disabled():
            assert not guarded.guards_enabled()
            with guarded.guards_disabled():
                assert not guarded.guards_enabled()
            assert not guarded.guards_enabled()
        assert guarded.guards_enabled()


class TestFuzzNeverRaisesNeverNonFinite:
    """Seeded fuzz over poisoned stacks: the guarded kernels must not
    raise and must not leak NaN/Inf, whatever the input regime."""

    @pytest.mark.parametrize("seed", range(8))
    def test_guarded_wrappers_on_poisoned_stacks(self, rng_factory, seed):
        rng = rng_factory(seed)
        a = _poison(rng, _stack(rng, N_SUB, 3, 3))
        b = _poison(rng, _stack(rng, N_SUB, 3, 2))
        out, _ = guarded.solve_stack(a, b)
        assert np.isfinite(out).all()
        pinv, _ = guarded.pinv_stack(a)
        assert np.isfinite(pinv).all()
        u, s, vh = guarded.svd_stack(a)
        assert np.isfinite(u).all() and np.isfinite(s).all()
        assert np.isfinite(vh).all()

    @pytest.mark.parametrize("seed", range(8))
    def test_batched_linalg_on_poisoned_stacks(self, rng_factory, seed):
        rng = rng_factory(100 + seed)
        constraints = _poison(rng, _stack(rng, N_SUB, 2, 4))
        vectors = null_space_batch(constraints, 2)
        assert vectors.shape == (N_SUB, 4, 2)
        assert np.isfinite(vectors).all()
        directions = _poison(rng, _stack(rng, N_SUB, 4, 2))
        complement = orthonormal_complement_batch(directions, 2)
        assert complement.shape == (N_SUB, 4, 2)
        assert np.isfinite(complement).all()

    @pytest.mark.parametrize("seed", range(4))
    def test_well_conditioned_stacks_match_the_reference(self, rng_factory, seed):
        rng = rng_factory(200 + seed)
        constraints = _stack(rng, N_SUB, 2, 4)
        batched = null_space_batch(constraints, 2)
        for k in range(N_SUB):
            assert np.allclose(batched[k], null_space(constraints[k])[:, :2])
        directions = _stack(rng, N_SUB, 4, 2)
        batched = orthonormal_complement_batch(directions, 2)
        for k in range(N_SUB):
            assert np.allclose(
                batched[k], orthonormal_complement(directions[k])[:, :2]
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_pinv_matches_per_matrix_fallback_when_clean(self, rng_factory, seed):
        rng = rng_factory(300 + seed)
        stack = _stack(rng, N_SUB, 3, 2)
        batched, degraded = guarded.pinv_stack(stack)
        assert not degraded
        for k in range(N_SUB):
            assert np.allclose(
                batched[k], np.linalg.pinv(stack[k], rcond=guarded.GUARD_RCOND)
            )

    def test_disabled_guards_still_raise_on_deficit(self, rng):
        stack = _stack(rng, N_SUB, 3, 4)
        with guarded.guards_disabled():
            with pytest.raises(DimensionError):
                null_space_batch(stack, 2)


class TestEndToEndBitIdentity:
    """The guard layer must be invisible on healthy channels: a whole
    simulation with guards disabled is bit-identical to one with guards
    enabled, clean and faulty scenarios alike."""

    @pytest.mark.parametrize("scenario", ["three-pair", "dense-lan-20-faulty"])
    def test_guards_do_not_perturb_a_healthy_simulation(self, scenario):
        from repro.sim.runner import SimulationConfig, run_simulation
        from repro.sim.scenarios import scenario_factory

        config = SimulationConfig(duration_us=10_000.0, n_subcarriers=4)
        with guarded.guards_disabled():
            baseline = run_simulation(
                scenario_factory(scenario)(), "n+", seed=3, config=config
            )
        assert guarded.guards_enabled()
        guarded_run = run_simulation(
            scenario_factory(scenario)(), "n+", seed=3, config=config
        )
        assert guarded_run.to_dict() == baseline.to_dict()
