"""Tests for dB conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.db import (
    db_to_linear,
    dbm_to_milliwatt,
    linear_to_db,
    milliwatt_to_dbm,
    power_db,
    signal_power,
    snr_db,
)


class TestConversions:
    def test_known_values(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(-10.0) == pytest.approx(0.1)
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_dbm_and_milliwatt(self):
        assert dbm_to_milliwatt(0.0) == pytest.approx(1.0)
        assert milliwatt_to_dbm(100.0) == pytest.approx(20.0)

    def test_zero_power_is_clamped(self):
        assert linear_to_db(0.0) < -200
        assert np.isfinite(linear_to_db(0.0))

    def test_negative_power_is_clamped(self):
        assert np.isfinite(linear_to_db(-5.0))

    def test_array_input(self):
        values = np.array([1.0, 10.0, 100.0])
        assert np.allclose(linear_to_db(values), [0.0, 10.0, 20.0])

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db, abs=1e-9)


class TestSignalPower:
    def test_unit_tone(self):
        samples = np.exp(1j * np.linspace(0, 10, 1000))
        assert signal_power(samples) == pytest.approx(1.0, rel=1e-6)

    def test_empty_signal(self):
        assert signal_power(np.array([])) == 0.0

    def test_power_db_of_unit_signal_is_zero(self):
        samples = np.ones(100, dtype=complex)
        assert power_db(samples) == pytest.approx(0.0, abs=1e-9)

    def test_snr_db(self, rng):
        signal = np.ones(1000, dtype=complex)
        noise = 0.1 * (rng.standard_normal(1000) + 1j * rng.standard_normal(1000)) / np.sqrt(2)
        measured = snr_db(signal, noise)
        assert measured == pytest.approx(20.0, abs=1.0)
