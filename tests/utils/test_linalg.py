"""Tests for the subspace/linear-algebra primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.utils.linalg import (
    is_in_subspace,
    null_space,
    orthonormal_basis,
    orthonormal_complement,
    project_onto_subspace,
    project_out_subspace,
    projection_matrix,
    random_unitary,
    subspace_angle,
)


def _random_complex(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestNullSpace:
    def test_vectors_satisfy_constraints(self, rng):
        a = _random_complex(rng, (2, 4))
        basis = null_space(a)
        assert basis.shape == (4, 2)
        assert np.allclose(a @ basis, 0, atol=1e-10)

    def test_columns_are_orthonormal(self, rng):
        a = _random_complex(rng, (1, 3))
        basis = null_space(a)
        gram = basis.conj().T @ basis
        assert np.allclose(gram, np.eye(basis.shape[1]), atol=1e-10)

    def test_full_rank_square_matrix_has_empty_null_space(self, rng):
        a = _random_complex(rng, (3, 3))
        assert null_space(a).shape == (3, 0)

    def test_zero_constraints_return_identity_like_basis(self):
        basis = null_space(np.zeros((0, 3)))
        assert basis.shape == (3, 3)

    def test_rank_deficient_matrix(self, rng):
        row = _random_complex(rng, (1, 4))
        a = np.vstack([row, 2 * row, 3 * row])
        basis = null_space(a)
        assert basis.shape == (4, 3)
        assert np.allclose(a @ basis, 0, atol=1e-9)

    def test_accepts_one_dimensional_input(self, rng):
        vector = _random_complex(rng, 3)
        basis = null_space(vector)
        # A single vector treated as a column matrix has an empty null space
        # in its 1-dimensional domain unless it is zero.
        assert basis.shape[0] == 1


class TestOrthonormalBasisAndComplement:
    def test_basis_spans_input(self, rng):
        a = _random_complex(rng, (4, 2))
        basis = orthonormal_basis(a)
        assert basis.shape == (4, 2)
        for column in a.T:
            assert is_in_subspace(column, basis)

    def test_complement_is_orthogonal(self, rng):
        a = _random_complex(rng, (4, 2))
        complement = orthonormal_complement(a)
        assert complement.shape == (4, 2)
        assert np.allclose(a.conj().T @ complement, 0, atol=1e-10)

    def test_complement_of_empty_is_full_space(self):
        complement = orthonormal_complement(np.zeros((3, 0)))
        assert complement.shape == (3, 3)

    def test_dimensions_add_up(self, rng):
        for n_cols in range(4):
            a = _random_complex(rng, (4, n_cols)) if n_cols else np.zeros((4, 0))
            basis = orthonormal_basis(a)
            complement = orthonormal_complement(a)
            assert basis.shape[1] + complement.shape[1] == 4

    def test_duplicate_columns_do_not_inflate_rank(self, rng):
        column = _random_complex(rng, (4, 1))
        a = np.concatenate([column, column], axis=1)
        assert orthonormal_basis(a).shape[1] == 1
        assert orthonormal_complement(a).shape[1] == 3


class TestProjections:
    def test_project_out_removes_component(self, rng):
        basis = orthonormal_basis(_random_complex(rng, (5, 2)))
        inside = basis @ _random_complex(rng, 2)
        residual = project_out_subspace(inside, basis)
        assert np.allclose(residual, 0, atol=1e-10)

    def test_project_out_keeps_orthogonal_component(self, rng):
        a = _random_complex(rng, (5, 2))
        basis = orthonormal_basis(a)
        complement = orthonormal_complement(a)
        outside = complement @ _random_complex(rng, 3)
        residual = project_out_subspace(outside, basis)
        assert np.allclose(residual, outside, atol=1e-10)

    def test_project_onto_coordinates(self, rng):
        basis = orthonormal_basis(_random_complex(rng, (4, 2)))
        coords = _random_complex(rng, 2)
        vector = basis @ coords
        recovered = project_onto_subspace(vector, basis)
        assert np.allclose(recovered, coords, atol=1e-10)

    def test_projection_matrix_is_idempotent(self, rng):
        basis = _random_complex(rng, (4, 2))
        p = projection_matrix(basis)
        assert np.allclose(p @ p, p, atol=1e-10)

    def test_dimension_mismatch_raises(self, rng):
        basis = _random_complex(rng, (4, 2))
        with pytest.raises(DimensionError):
            project_out_subspace(_random_complex(rng, 3), basis)

    def test_matrix_of_samples_projected_columnwise(self, rng):
        basis = orthonormal_basis(_random_complex(rng, (3, 1)))
        samples = basis @ _random_complex(rng, (1, 10))
        residual = project_out_subspace(samples, basis)
        assert residual.shape == (3, 10)
        assert np.allclose(residual, 0, atol=1e-10)


class TestRandomUnitaryAndAngles:
    def test_random_unitary_is_unitary(self, rng):
        u = random_unitary(4, rng)
        assert np.allclose(u.conj().T @ u, np.eye(4), atol=1e-10)

    def test_angle_between_identical_subspaces_is_zero(self, rng):
        a = _random_complex(rng, (4, 2))
        assert subspace_angle(a, a) == pytest.approx(0.0, abs=1e-6)

    def test_angle_between_orthogonal_vectors_is_right_angle(self):
        a = np.array([1.0, 0.0, 0.0])
        b = np.array([0.0, 1.0, 0.0])
        assert subspace_angle(a, b) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_is_in_subspace_detects_membership(self, rng):
        basis = orthonormal_basis(_random_complex(rng, (4, 2)))
        assert is_in_subspace(basis[:, 0], basis)
        complement = orthonormal_complement(basis)
        assert not is_in_subspace(complement[:, 0], basis)

    def test_zero_vector_is_in_any_subspace(self, rng):
        basis = orthonormal_basis(_random_complex(rng, (3, 1)))
        assert is_in_subspace(np.zeros(3), basis)


class TestLinalgProperties:
    @given(n_rows=st.integers(1, 4), n_cols=st.integers(1, 6), seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_null_space_dimension_theorem(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n_rows, n_cols)) + 1j * rng.standard_normal((n_rows, n_cols))
        basis = null_space(a)
        rank = np.linalg.matrix_rank(a)
        assert basis.shape == (n_cols, n_cols - rank)
        if basis.shape[1]:
            assert np.allclose(a @ basis, 0, atol=1e-8)

    @given(dim=st.integers(2, 5), n_vectors=st.integers(1, 3), seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_complement_plus_basis_reconstruct_identity(self, dim, n_vectors, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((dim, n_vectors)) + 1j * rng.standard_normal((dim, n_vectors))
        basis = orthonormal_basis(a)
        complement = orthonormal_complement(a)
        full = np.concatenate([basis, complement], axis=1)
        assert np.allclose(full @ full.conj().T, np.eye(dim), atol=1e-8)
