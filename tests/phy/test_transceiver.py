"""End-to-end tests of the MIMO transmit/receive chain."""

import numpy as np
import pytest

from repro.channel.models import awgn
from repro.channel.multipath import MultipathChannel
from repro.exceptions import ConfigurationError
from repro.phy.rates import MCS_TABLE
from repro.phy.transceiver import MimoReceiver, MimoTransmitter, StreamConfig
from repro.utils.bits import random_bits
from repro.utils.db import db_to_linear


def _run_link(rng, n_tx, n_rx, streams, snr_db=30.0, n_taps=3):
    """Build a frame, run it through a random channel and decode it."""
    transmitter = MimoTransmitter(n_tx)
    samples, layout = transmitter.build_frame(streams)
    channel = MultipathChannel.random(
        n_rx, n_tx, rng, n_taps=n_taps, average_gain=db_to_linear(snr_db)
    )
    noise_power = 1.0
    received = awgn(channel.apply(samples), noise_power, rng)
    receiver = MimoReceiver(n_rx)
    return receiver.decode(received, layout, noise_power=noise_power)


class TestSingleStream:
    @pytest.mark.parametrize("mcs_index", [0, 2, 4])
    def test_single_antenna_link(self, mcs_index, rng):
        bits = random_bits(600, rng)
        streams = [
            StreamConfig(bits=bits, mcs=MCS_TABLE[mcs_index], precoder=np.array([1.0]), stream_id=1)
        ]
        decoded = _run_link(rng, 1, 1, streams, snr_db=28.0)
        assert decoded[1].bit_error_rate(bits) == 0.0

    def test_low_snr_high_mcs_fails(self, rng):
        bits = random_bits(600, rng)
        streams = [
            StreamConfig(bits=bits, mcs=MCS_TABLE[7], precoder=np.array([1.0]), stream_id=0)
        ]
        decoded = _run_link(rng, 1, 1, streams, snr_db=3.0)
        assert decoded[0].bit_error_rate(bits) > 0.0

    def test_post_snr_reported_reasonably(self, rng):
        bits = random_bits(400, rng)
        streams = [
            StreamConfig(bits=bits, mcs=MCS_TABLE[2], precoder=np.array([1.0]), stream_id=0)
        ]
        decoded = _run_link(rng, 1, 1, streams, snr_db=25.0)
        assert decoded[0].post_snr_db > 10.0


class TestSpatialMultiplexing:
    def test_two_streams_over_2x2(self, rng):
        bits_a = random_bits(500, rng)
        bits_b = random_bits(500, rng)
        streams = [
            StreamConfig(bits=bits_a, mcs=MCS_TABLE[2], precoder=np.array([1.0, 0.0]), stream_id=0),
            StreamConfig(bits=bits_b, mcs=MCS_TABLE[2], precoder=np.array([0.0, 1.0]), stream_id=1),
        ]
        decoded = _run_link(rng, 2, 2, streams, snr_db=32.0)
        assert decoded[0].bit_error_rate(bits_a) == 0.0
        assert decoded[1].bit_error_rate(bits_b) == 0.0

    def test_three_streams_over_3x3(self, rng):
        all_bits = [random_bits(300, rng) for _ in range(3)]
        streams = [
            StreamConfig(
                bits=bits,
                mcs=MCS_TABLE[1],
                precoder=np.eye(3)[i].astype(complex),
                stream_id=i,
            )
            for i, bits in enumerate(all_bits)
        ]
        decoded = _run_link(rng, 3, 3, streams, snr_db=35.0)
        for i, bits in enumerate(all_bits):
            assert decoded[i].bit_error_rate(bits) < 0.01

    def test_wanted_subset_only(self, rng):
        bits_a = random_bits(200, rng)
        bits_b = random_bits(200, rng)
        streams = [
            StreamConfig(bits=bits_a, mcs=MCS_TABLE[0], precoder=np.array([1.0, 0.0]), stream_id=10),
            StreamConfig(bits=bits_b, mcs=MCS_TABLE[0], precoder=np.array([0.0, 1.0]), stream_id=11),
        ]
        transmitter = MimoTransmitter(2)
        samples, layout = transmitter.build_frame(streams)
        channel = MultipathChannel.random(2, 2, rng, n_taps=2, average_gain=1e3)
        received = awgn(channel.apply(samples), 1.0, rng)
        decoded = MimoReceiver(2).decode(received, layout, wanted_streams=[11], noise_power=1.0)
        assert list(decoded) == [11]
        assert decoded[11].bit_error_rate(bits_b) == 0.0


class TestPrecodedNulling:
    def test_nulling_precoder_protects_a_bystander(self, rng):
        """A 2-antenna transmitter nulling at a single-antenna bystander
        must deliver its stream while leaving (almost) no power there."""
        from repro.mimo.nulling import nulling_precoders

        h_bystander = rng.standard_normal((1, 2)) + 1j * rng.standard_normal((1, 2))
        precoder = nulling_precoders([h_bystander], 2, n_streams=1)[:, 0]
        bits = random_bits(400, rng)
        streams = [StreamConfig(bits=bits, mcs=MCS_TABLE[2], precoder=precoder, stream_id=0)]
        transmitter = MimoTransmitter(2)
        samples, layout = transmitter.build_frame(streams)
        leak = h_bystander @ samples
        assert np.mean(np.abs(leak) ** 2) < 1e-20

        channel = MultipathChannel.flat(
            rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        ).scaled(db_to_linear(28.0))
        received = awgn(channel.apply(samples), 1.0, rng)
        decoded = MimoReceiver(2).decode(received, layout, noise_power=1.0)
        assert decoded[0].bit_error_rate(bits) == 0.0


class TestValidation:
    def test_zero_antennas_rejected(self):
        with pytest.raises(ConfigurationError):
            MimoTransmitter(0)
        with pytest.raises(ConfigurationError):
            MimoReceiver(0)

    def test_empty_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            MimoTransmitter(2).build_frame([])

    def test_layout_reports_lengths(self, rng):
        bits = random_bits(100, rng)
        streams = [StreamConfig(bits=bits, mcs=MCS_TABLE[0], precoder=np.array([1.0]), stream_id=0)]
        _, layout = MimoTransmitter(1).build_frame(streams)
        assert layout.frame_length == layout.preamble_length + layout.body_length
        assert layout.n_streams == 1
