"""Tests for the MCS table."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.phy.rates import MCS_TABLE, data_rate_mbps, highest_mcs, lowest_mcs, mcs_by_index


class TestMcsTable:
    def test_table_has_eight_entries(self):
        assert len(MCS_TABLE) == 8

    def test_indices_are_consecutive(self):
        assert [m.index for m in MCS_TABLE] == list(range(8))

    def test_rates_increase_with_index(self):
        rates = [m.data_rate_mbps() for m in MCS_TABLE]
        assert all(r1 < r2 for r1, r2 in zip(rates, rates[1:]))

    def test_esnr_thresholds_increase_with_index(self):
        thresholds = [m.min_esnr_db for m in MCS_TABLE]
        assert all(t1 < t2 for t1, t2 in zip(thresholds, thresholds[1:]))

    def test_10mhz_rates_are_half_of_20mhz(self):
        for mcs in MCS_TABLE:
            assert mcs.data_rate_mbps(10.0) == pytest.approx(mcs.data_rate_mbps(20.0) / 2)

    def test_standard_802_11a_rates_at_20mhz(self):
        """The 20 MHz rate set must be the familiar 6..54 Mb/s ladder."""
        expected = [6, 9, 12, 18, 24, 36, 48, 54]
        for mcs, rate in zip(MCS_TABLE, expected):
            assert mcs.data_rate_mbps(20.0) == pytest.approx(rate)

    def test_streams_scale_rate_linearly(self):
        mcs = mcs_by_index(4)
        assert mcs.data_rate_mbps(n_streams=3) == pytest.approx(3 * mcs.data_rate_mbps())

    def test_lowest_and_highest(self):
        assert lowest_mcs().index == 0
        assert highest_mcs().index == len(MCS_TABLE) - 1

    def test_bad_index_raises(self):
        with pytest.raises(ConfigurationError):
            mcs_by_index(99)

    def test_data_rate_helper(self):
        assert data_rate_mbps(0, 20.0) == pytest.approx(6.0)


class TestAirtime:
    def test_airtime_rounds_up_to_whole_symbols(self):
        mcs = mcs_by_index(0)  # 24 data bits per 8 us symbol at 10 MHz
        assert mcs.airtime_us(1) == pytest.approx(8.0)
        assert mcs.airtime_us(24) == pytest.approx(8.0)
        assert mcs.airtime_us(25) == pytest.approx(16.0)

    def test_airtime_zero_bits(self):
        assert mcs_by_index(3).airtime_us(0) == 0.0

    def test_airtime_scales_with_packet_size(self):
        mcs = mcs_by_index(7)
        assert mcs.airtime_us(24000) == pytest.approx(2 * mcs.airtime_us(12000), rel=0.01)

    def test_airtime_decreases_with_streams(self):
        mcs = mcs_by_index(4)
        assert mcs.airtime_us(12000, n_streams=3) < mcs.airtime_us(12000, n_streams=1)

    def test_1500_byte_packet_at_18mbps_reference(self):
        """The paper's reference point: 1500 bytes at 18 Mb/s (10 MHz)."""
        mcs = mcs_by_index(5)  # 16-QAM 3/4 = 18 Mb/s on 10 MHz
        airtime_ms = mcs.airtime_us(1500 * 8) / 1000
        assert airtime_ms == pytest.approx(0.667, rel=0.02)

    def test_coded_bits_per_symbol(self):
        assert mcs_by_index(0).coded_bits_per_ofdm_symbol == 48
        assert mcs_by_index(7).coded_bits_per_ofdm_symbol == 288

    def test_data_bits_per_symbol_accounts_for_code_rate(self):
        assert mcs_by_index(0).data_bits_per_ofdm_symbol == pytest.approx(24)
        assert mcs_by_index(7).data_bits_per_ofdm_symbol == pytest.approx(216)
