"""Property tests for the ESNR mappings (repro.phy.esnr).

Three families of properties:

* :func:`~repro.phy.esnr.esnr_for_modulation` is monotone under
  per-subcarrier SNR increases (and exact on flat channels);
* :func:`~repro.phy.esnr.select_mcs` is consistent with the per-MCS
  thresholds at +/-epsilon around every boundary;
* the ordering between the uncoded-BER-averaging ESNR and the
  mutual-information ESNR is pinned: both are bounded by the best
  subcarrier, they coincide on flat channels, and a deep fade drags the
  BER average (far) below the MI average -- the worst-subcarrier
  domination that motivated switching rate selection to the MI mapping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.esnr import (
    delivery_margin_db,
    esnr_ber_average,
    esnr_for_modulation,
    packet_delivery_probability,
    select_mcs,
)
from repro.phy.rates import MCS_TABLE


class TestMutualInformationEsnr:
    def test_flat_channel_is_exact(self):
        for snr in (-5.0, 0.0, 7.5, 22.0, 40.0):
            flat = np.full(16, snr)
            for mcs in MCS_TABLE:
                assert esnr_for_modulation(flat, mcs.modulation) == pytest.approx(
                    snr, abs=1e-9
                )

    def test_monotone_under_single_subcarrier_increase(self, rng):
        modulation = MCS_TABLE[3].modulation
        for _ in range(50):
            snrs = rng.uniform(-5.0, 35.0, size=int(rng.integers(2, 17)))
            base = esnr_for_modulation(snrs, modulation)
            bumped = snrs.copy()
            index = int(rng.integers(0, snrs.size))
            bumped[index] += float(rng.uniform(0.1, 10.0))
            assert esnr_for_modulation(bumped, modulation) > base

    def test_monotone_under_uniform_increase(self, rng):
        modulation = MCS_TABLE[0].modulation
        for _ in range(20):
            snrs = rng.uniform(-5.0, 35.0, size=8)
            base = esnr_for_modulation(snrs, modulation)
            assert esnr_for_modulation(snrs + 3.0, modulation) > base

    def test_bounded_by_best_and_worst_subcarrier(self, rng):
        modulation = MCS_TABLE[5].modulation
        for _ in range(50):
            snrs = rng.uniform(-5.0, 35.0, size=8)
            esnr = esnr_for_modulation(snrs, modulation)
            assert float(np.min(snrs)) - 1e-9 <= esnr <= float(np.max(snrs)) + 1e-9

    def test_empty_channel_is_minus_infinity(self):
        assert esnr_for_modulation([], MCS_TABLE[0].modulation) == -np.inf


class TestSelectMcsBoundaries:
    """select_mcs at +/-epsilon around every per-MCS threshold.

    On a flat channel the ESNR equals the SNR exactly, so a flat channel
    epsilon above a threshold must satisfy exactly the MCS at (and below)
    that threshold, and epsilon below must not satisfy it.
    """

    EPSILON = 0.1

    def test_just_above_each_threshold_selects_that_mcs(self):
        for mcs in MCS_TABLE:
            flat = np.full(8, mcs.min_esnr_db + self.EPSILON)
            assert select_mcs(flat).index == mcs.index

    def test_just_below_each_threshold_selects_the_previous_mcs(self):
        for mcs in MCS_TABLE:
            flat = np.full(8, mcs.min_esnr_db - self.EPSILON)
            selected = select_mcs(flat)
            if mcs.index == 0:
                # Nothing qualifies below the first threshold; the most
                # robust MCS is the documented fallback.
                assert selected.index == 0
            else:
                assert selected.index == mcs.index - 1

    def test_margin_shifts_the_boundary(self):
        for mcs in MCS_TABLE[1:]:
            flat = np.full(8, mcs.min_esnr_db + self.EPSILON)
            assert select_mcs(flat, margin_db=1.0).index == mcs.index - 1
            assert select_mcs(flat, margin_db=-1.0).index >= mcs.index

    def test_thresholds_are_strictly_increasing(self):
        thresholds = [mcs.min_esnr_db for mcs in MCS_TABLE]
        assert thresholds == sorted(thresholds)
        assert len(set(thresholds)) == len(thresholds)


class TestEsnrOrderingPinned:
    """esnr_ber_average vs esnr_for_modulation, pinned."""

    def test_flat_channels_coincide(self):
        for mcs in MCS_TABLE:
            # Within the informative range of the BER curve inversion.
            flat = np.full(8, mcs.min_esnr_db - 2.0)
            ber = esnr_ber_average(flat, mcs.modulation)
            mi = esnr_for_modulation(flat, mcs.modulation)
            assert ber == pytest.approx(mi, abs=0.05)

    def test_both_bounded_by_the_best_subcarrier(self, rng):
        for mcs in MCS_TABLE:
            for _ in range(20):
                snrs = rng.uniform(-5.0, 35.0, size=8)
                best = float(np.max(snrs))
                assert esnr_ber_average(snrs, mcs.modulation) <= best + 1e-6
                assert esnr_for_modulation(snrs, mcs.modulation) <= best + 1e-9

    def test_deep_fade_drags_the_ber_average_below(self):
        # One faded subcarrier dominates the BER average but barely
        # moves the MI average -- the asymmetry that makes the BER
        # variant a poor predictor for coded systems.
        for mcs in MCS_TABLE:
            snrs = np.full(8, 25.0)
            snrs[0] = 0.0
            ber = esnr_ber_average(snrs, mcs.modulation)
            mi = esnr_for_modulation(snrs, mcs.modulation)
            assert ber < mi
            assert mi - ber > 3.0  # far below, not marginally

    def test_ber_average_saturates_to_the_best_subcarrier(self):
        # Once every subcarrier's uncoded BER underflows, the BER-domain
        # average carries no information and the mapping pins to the best
        # subcarrier -- above the MI average by construction.  This is
        # the one regime where the usual ordering flips, documented here.
        snrs = np.array([38.0, 40.0, 42.0, 44.0])
        modulation = MCS_TABLE[0].modulation  # BPSK: deepest underflow
        ber = esnr_ber_average(snrs, modulation)
        mi = esnr_for_modulation(snrs, modulation)
        assert ber == pytest.approx(float(np.max(snrs)), abs=1e-6)
        assert ber > mi


class TestDeliveryMargin:
    def test_margin_matches_the_logistic_centre(self, rng):
        # p(delivery) crosses 0.5 exactly where the margin crosses 0 --
        # the shared-centre contract the fidelity band relies on.
        for mcs in MCS_TABLE:
            centre = mcs.min_esnr_db - 2.5
            just_above = np.full(8, centre + 0.2)
            just_below = np.full(8, centre - 0.2)
            assert delivery_margin_db(just_above, mcs) > 0
            assert delivery_margin_db(just_below, mcs) < 0
            assert packet_delivery_probability(just_above, mcs, 1000) > 0.5
            assert packet_delivery_probability(just_below, mcs, 1000) < 0.5

    def test_margin_is_probability_monotone(self, rng):
        mcs = MCS_TABLE[4]
        snrs = [rng.uniform(mcs.min_esnr_db - 8, mcs.min_esnr_db + 8, size=8) for _ in range(20)]
        margins = [delivery_margin_db(s, mcs) for s in snrs]
        probabilities = [packet_delivery_probability(s, mcs, 12_000) for s in snrs]
        order = np.argsort(margins)
        assert list(np.array(probabilities)[order]) == sorted(probabilities)
