"""Tests for PHY header serialization."""

import numpy as np
import pytest

from repro.exceptions import DecodingError
from repro.phy.frame import PHY_HEADER_BITS, FrameType, PhyHeader


def _header(**overrides) -> PhyHeader:
    fields = dict(
        frame_type=FrameType.DATA_HEADER,
        source=17,
        destination=42,
        length_bytes=1500,
        mcs_index=5,
        n_antennas=3,
        n_streams=2,
        duration_us=1336,
    )
    fields.update(overrides)
    return PhyHeader(**fields)


class TestPhyHeader:
    def test_roundtrip(self):
        header = _header()
        bits = header.to_bits()
        assert bits.size == PHY_HEADER_BITS
        assert PhyHeader.from_bits(bits) == header

    def test_roundtrip_ack_header(self):
        header = _header(frame_type=FrameType.ACK_HEADER, mcs_index=0, n_streams=1)
        assert PhyHeader.from_bits(header.to_bits()) == header

    def test_crc_detects_corruption(self):
        bits = _header().to_bits()
        bits[5] ^= 1
        with pytest.raises(DecodingError):
            PhyHeader.from_bits(bits)

    def test_wrong_length_rejected(self):
        with pytest.raises(DecodingError):
            PhyHeader.from_bits(np.zeros(10, dtype=np.int8))

    def test_field_boundaries(self):
        header = _header(source=0xFFFF, destination=0, duration_us=(1 << 20) - 1)
        decoded = PhyHeader.from_bits(header.to_bits())
        assert decoded.source == 0xFFFF
        assert decoded.duration_us == (1 << 20) - 1

    def test_all_frame_types_roundtrip(self):
        for frame_type in FrameType:
            header = _header(frame_type=frame_type)
            assert PhyHeader.from_bits(header.to_bits()).frame_type is frame_type
