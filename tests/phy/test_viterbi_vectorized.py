"""Bit-exact equivalence of the vectorized Viterbi decoder against the
readable per-state reference implementation, across hard, soft, punctured
and erasure inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.coding.convolutional import (
    ConvolutionalEncoder,
    conv_encode,
    default_encoder,
)
from repro.phy.coding.puncturing import depuncture, puncture
from repro.phy.coding.viterbi import _viterbi_decode_reference, viterbi_decode

RATES = [(1, 2), (2, 3), (3, 4)]


def _flip(coded: np.ndarray, rng: np.random.Generator, p: float) -> np.ndarray:
    noisy = coded.astype(float).copy()
    flips = rng.random(noisy.size) < p
    noisy[flips] = 1.0 - noisy[flips]
    return noisy


class TestHardEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_frames_with_bit_errors(self, rng_factory, seed):
        rng = rng_factory(seed)
        n = int(rng.integers(1, 600))
        bits = rng.integers(0, 2, n).astype(np.int8)
        noisy = _flip(conv_encode(bits), rng, 0.04)
        fast = viterbi_decode(noisy, n)
        slow = _viterbi_decode_reference(noisy, n)
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("rate", RATES)
    def test_punctured_frames_with_erasures(self, rng, rate):
        n = 240
        bits = rng.integers(0, 2, n).astype(np.int8)
        mother = conv_encode(bits)
        received = _flip(puncture(mother, rate), rng, 0.02)
        depunctured = depuncture(received, rate, mother.size)
        assert np.isnan(depunctured).any() or rate == (1, 2)
        fast = viterbi_decode(depunctured, n)
        slow = _viterbi_decode_reference(depunctured, n)
        assert np.array_equal(fast, slow)

    def test_unterminated_frames(self, rng):
        bits = rng.integers(0, 2, 120).astype(np.int8)
        coded = _flip(default_encoder().encode(bits, terminate=False), rng, 0.03)
        fast = viterbi_decode(coded, 120, terminated=False)
        slow = _viterbi_decode_reference(coded, 120, terminated=False)
        assert np.array_equal(fast, slow)

    def test_clean_frame_decodes_exactly(self, rng):
        bits = rng.integers(0, 2, 333).astype(np.int8)
        decoded = viterbi_decode(conv_encode(bits).astype(float), 333)
        assert np.array_equal(decoded, bits)


class TestSoftEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_llr_frames(self, rng_factory, seed):
        rng = rng_factory(100 + seed)
        n = int(rng.integers(1, 500))
        bits = rng.integers(0, 2, n).astype(np.int8)
        coded = conv_encode(bits)
        llrs = (1.0 - 2.0 * coded) * 3.0 + rng.normal(0.0, 1.5, coded.size)
        fast = viterbi_decode(llrs, n, soft=True)
        slow = _viterbi_decode_reference(llrs, n, soft=True)
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("rate", RATES)
    def test_punctured_llrs_with_erasures(self, rng, rate):
        n = 180
        bits = rng.integers(0, 2, n).astype(np.int8)
        mother = conv_encode(bits)
        kept = puncture(mother, rate)
        llrs = (1.0 - 2.0 * kept) * 2.0 + rng.normal(0.0, 2.0, kept.size)
        depunctured = depuncture(llrs, rate, mother.size)
        fast = viterbi_decode(depunctured, n, soft=True)
        slow = _viterbi_decode_reference(depunctured, n, soft=True)
        assert np.array_equal(fast, slow)

    def test_erasures_contribute_zero_metric(self, rng):
        # A frame whose erased positions carry huge LLRs must decode the
        # same as one where they carry zeros: erasures are fully masked.
        n = 100
        bits = rng.integers(0, 2, n).astype(np.int8)
        mother = conv_encode(bits)
        kept = puncture(mother, (3, 4))
        llrs = (1.0 - 2.0 * kept) * 2.0 + rng.normal(0.0, 1.0, kept.size)
        depunctured = depuncture(llrs, (3, 4), mother.size)
        assert np.isnan(depunctured).any()
        reference = viterbi_decode(depunctured, n, soft=True)
        poisoned = np.where(np.isnan(depunctured), 1e9, depunctured)
        erased_as_nan = np.where(np.isnan(depunctured), np.nan, poisoned)
        assert np.array_equal(viterbi_decode(erased_as_nan, n, soft=True), reference)


class TestCustomEncoders:
    def test_non_default_polynomials(self, rng):
        encoder = ConvolutionalEncoder(g0=0o5, g1=0o7, constraint_length=3)
        bits = rng.integers(0, 2, 80).astype(np.int8)
        noisy = _flip(encoder.encode(bits), rng, 0.05)
        fast = viterbi_decode(noisy, 80, encoder=encoder)
        slow = _viterbi_decode_reference(noisy, 80, encoder=encoder)
        assert np.array_equal(fast, slow)

    def test_trellis_tables_are_cached_and_shared(self):
        first = ConvolutionalEncoder()
        second = ConvolutionalEncoder()
        next_a, out_a = first.transitions()
        next_b, out_b = second.transitions()
        assert next_a is next_b
        assert out_a is out_b
        assert not next_a.flags.writeable

    def test_predecessor_tables_invert_transitions(self):
        encoder = default_encoder()
        next_state, _ = encoder.transitions()
        prev_states, prev_bits = encoder.predecessors()
        for state in range(encoder.n_states):
            for j in range(2):
                assert next_state[prev_states[state, j], prev_bits[state, j]] == state
