"""Tests for effective SNR and bitrate selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.esnr import (
    effective_snr_db,
    esnr_ber_average,
    esnr_for_modulation,
    packet_delivery_probability,
    per_subcarrier_snr_db,
    select_mcs,
)
from repro.phy.modulation import get_modulation
from repro.phy.rates import MCS_TABLE


class TestPerSubcarrierSnr:
    def test_flat_channel(self):
        gains = np.ones(48, dtype=complex)
        snrs = per_subcarrier_snr_db(gains, noise_power=0.01)
        assert np.allclose(snrs, 20.0)

    def test_scales_with_signal_power(self):
        gains = np.ones(4, dtype=complex)
        low = per_subcarrier_snr_db(gains, 1.0, signal_power=1.0)
        high = per_subcarrier_snr_db(gains, 1.0, signal_power=10.0)
        assert np.allclose(high - low, 10.0)

    def test_faded_subcarrier_has_lower_snr(self):
        gains = np.array([1.0, 0.1], dtype=complex)
        snrs = per_subcarrier_snr_db(gains, 0.01)
        assert snrs[0] > snrs[1]


class TestEffectiveSnr:
    def test_flat_channel_esnr_equals_snr(self):
        snrs = [15.0] * 48
        assert effective_snr_db(snrs) == pytest.approx(15.0, abs=0.1)

    def test_esnr_between_min_and_max(self, rng):
        snrs = rng.uniform(5, 25, size=48)
        esnr = effective_snr_db(snrs)
        assert snrs.min() - 1e-6 <= esnr <= snrs.max() + 1e-6

    def test_one_faded_subcarrier_is_not_catastrophic(self):
        """With coding, one bad subcarrier should not collapse the ESNR."""
        snrs = [20.0] * 47 + [-10.0]
        esnr = esnr_for_modulation(snrs, get_modulation("16qam"))
        assert esnr > 15.0

    def test_ber_average_is_more_pessimistic(self):
        snrs = [20.0] * 47 + [-10.0]
        modulation = get_modulation("16qam")
        assert esnr_ber_average(snrs, modulation) < esnr_for_modulation(snrs, modulation)

    def test_empty_input(self):
        assert effective_snr_db([]) == -np.inf

    def test_monotonic_in_every_subcarrier(self, rng):
        base = rng.uniform(5, 20, size=16)
        improved = base.copy()
        improved[3] += 6.0
        modulation = get_modulation("qpsk")
        assert esnr_for_modulation(improved, modulation) > esnr_for_modulation(base, modulation)

    @given(offset=st.floats(min_value=-5, max_value=5), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance_approximately(self, offset, seed):
        """Raising every subcarrier by X dB raises the ESNR by about X dB."""
        rng = np.random.default_rng(seed)
        snrs = rng.uniform(8, 20, size=32)
        modulation = get_modulation("qpsk")
        base = esnr_for_modulation(snrs, modulation)
        shifted = esnr_for_modulation(snrs + offset, modulation)
        assert shifted - base == pytest.approx(offset, abs=1.5)


class TestRateSelection:
    def test_high_snr_selects_fastest(self):
        assert select_mcs([35.0] * 48).index == len(MCS_TABLE) - 1

    def test_low_snr_selects_most_robust(self):
        assert select_mcs([0.0] * 48).index == 0

    def test_selection_is_monotonic_in_snr(self):
        indices = [select_mcs([snr] * 48).index for snr in range(0, 36, 2)]
        assert all(i1 <= i2 for i1, i2 in zip(indices, indices[1:]))

    def test_margin_makes_selection_conservative(self):
        snrs = [13.0] * 48
        assert select_mcs(snrs, margin_db=0.0).index >= select_mcs(snrs, margin_db=3.0).index

    def test_selected_rate_threshold_is_met(self):
        snrs = [17.5] * 48
        mcs = select_mcs(snrs)
        assert esnr_for_modulation(snrs, mcs.modulation) >= mcs.min_esnr_db


class TestDeliveryProbability:
    def test_high_margin_delivers(self):
        mcs = MCS_TABLE[3]
        prob = packet_delivery_probability([mcs.min_esnr_db + 10] * 48, mcs, 12000)
        assert prob > 0.99

    def test_far_below_threshold_fails(self):
        mcs = MCS_TABLE[5]
        prob = packet_delivery_probability([mcs.min_esnr_db - 8] * 48, mcs, 12000)
        assert prob < 0.05

    def test_at_threshold_is_likely_delivered(self):
        mcs = MCS_TABLE[2]
        prob = packet_delivery_probability([mcs.min_esnr_db] * 48, mcs, 12000)
        assert prob > 0.8

    def test_probability_monotonic_in_snr(self):
        mcs = MCS_TABLE[4]
        probs = [
            packet_delivery_probability([mcs.min_esnr_db + delta] * 16, mcs, 12000)
            for delta in (-6, -3, 0, 3, 6)
        ]
        assert all(p1 <= p2 for p1, p2 in zip(probs, probs[1:]))

    def test_longer_packets_are_harder(self):
        mcs = MCS_TABLE[4]
        snrs = [mcs.min_esnr_db + 1] * 16
        assert packet_delivery_probability(snrs, mcs, 48_000) <= packet_delivery_probability(
            snrs, mcs, 12_000
        )

    def test_probability_is_in_unit_interval(self, rng):
        mcs = MCS_TABLE[6]
        for _ in range(20):
            snrs = rng.uniform(-5, 35, size=16)
            prob = packet_delivery_probability(snrs, mcs, 12000)
            assert 0.0 <= prob <= 1.0
