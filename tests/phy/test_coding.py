"""Tests for the FEC pipeline: scrambler, convolutional code, Viterbi,
puncturing, interleaver and the combined codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DimensionError
from repro.phy.coding import (
    Codec,
    ConvolutionalEncoder,
    PUNCTURE_PATTERNS,
    conv_encode,
    deinterleave,
    depuncture,
    descramble,
    interleave,
    puncture,
    scramble,
    viterbi_decode,
)
from repro.phy.coding.puncturing import punctured_length
from repro.phy.coding.scrambler import scrambler_sequence
from repro.phy.rates import MCS_TABLE
from repro.utils.bits import bit_error_rate, random_bits


class TestScrambler:
    def test_scramble_is_involution(self, rng):
        bits = random_bits(500, rng)
        assert np.array_equal(descramble(scramble(bits)), bits)

    def test_sequence_period_is_127(self):
        sequence = scrambler_sequence(254)
        assert np.array_equal(sequence[:127], sequence[127:254])

    def test_sequence_is_balanced(self):
        sequence = scrambler_sequence(127)
        assert abs(int(np.sum(sequence)) - 64) <= 1

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            scrambler_sequence(10, seed=0)

    def test_different_seeds_differ(self):
        assert not np.array_equal(scrambler_sequence(50, 0x7F), scrambler_sequence(50, 0x29))


class TestConvolutionalEncoder:
    def test_rate_is_one_half(self, rng):
        bits = random_bits(100, rng)
        coded = conv_encode(bits)
        encoder = ConvolutionalEncoder()
        assert coded.size == 2 * (bits.size + encoder.tail_bits)

    def test_known_vector(self):
        """The 802.11 encoder output for an impulse is its generator pair."""
        encoder = ConvolutionalEncoder()
        coded = encoder.encode(np.array([1, 0, 0, 0, 0, 0, 0], dtype=np.int8), terminate=False)
        # First coded pair of a leading one is (1, 1) for g0=133, g1=171.
        assert coded[0] == 1 and coded[1] == 1

    def test_linear_code_property(self, rng):
        """The code is linear: encode(a xor b) = encode(a) xor encode(b)."""
        encoder = ConvolutionalEncoder()
        a = random_bits(64, rng)
        b = random_bits(64, rng)
        coded_sum = encoder.encode((a ^ b).astype(np.int8), terminate=False)
        sum_coded = encoder.encode(a, terminate=False) ^ encoder.encode(b, terminate=False)
        assert np.array_equal(coded_sum, sum_coded)

    def test_transitions_tables_shapes(self):
        encoder = ConvolutionalEncoder()
        next_state, outputs = encoder.transitions()
        assert next_state.shape == (64, 2)
        assert outputs.shape == (64, 2, 2)
        assert next_state.max() < 64

    def test_bad_constraint_length(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalEncoder(constraint_length=1)


class TestViterbi:
    def test_decodes_clean_stream(self, rng):
        bits = random_bits(200, rng)
        decoded = viterbi_decode(conv_encode(bits).astype(float), bits.size)
        assert np.array_equal(decoded, bits)

    def test_corrects_scattered_errors(self, rng):
        bits = random_bits(300, rng)
        coded = conv_encode(bits).astype(float)
        corrupted = coded.copy()
        error_positions = rng.choice(coded.size, size=12, replace=False)
        corrupted[error_positions] = 1 - corrupted[error_positions]
        decoded = viterbi_decode(corrupted, bits.size)
        assert bit_error_rate(decoded, bits) < 0.02

    def test_soft_decoding_beats_hard_on_noisy_llrs(self, rng):
        bits = random_bits(400, rng)
        coded = conv_encode(bits)
        # BPSK over AWGN at low SNR.
        symbols = 1.0 - 2.0 * coded.astype(float)
        noisy = symbols + rng.normal(0, 0.9, coded.size)
        hard = (noisy < 0).astype(float)
        llrs = 2 * noisy / 0.81
        hard_errors = bit_error_rate(viterbi_decode(hard, bits.size), bits)
        soft_errors = bit_error_rate(viterbi_decode(llrs, bits.size, soft=True), bits)
        assert soft_errors <= hard_errors

    def test_handles_erasures(self, rng):
        bits = random_bits(100, rng)
        coded = conv_encode(bits).astype(float)
        coded[10] = np.nan
        coded[45] = np.nan
        decoded = viterbi_decode(coded, bits.size)
        assert np.array_equal(decoded, bits)

    def test_odd_length_rejected(self):
        from repro.exceptions import DecodingError

        with pytest.raises(DecodingError):
            viterbi_decode(np.zeros(7), 3)


class TestPuncturing:
    @pytest.mark.parametrize("rate", sorted(PUNCTURE_PATTERNS))
    def test_punctured_length_matches_rate(self, rate, rng):
        coded = random_bits(1200, rng)
        punctured = puncture(coded, rate)
        num, den = rate
        assert punctured.size == pytest.approx(coded.size * den / (2 * num), abs=2)

    @pytest.mark.parametrize("rate", sorted(PUNCTURE_PATTERNS))
    def test_depuncture_restores_positions(self, rate, rng):
        coded = random_bits(240, rng).astype(float)
        punctured = puncture(coded, rate)
        restored = depuncture(punctured, rate, coded.size)
        kept = ~np.isnan(restored)
        assert np.array_equal(restored[kept], coded[kept])
        assert punctured_length(coded.size, rate) == int(np.sum(kept))

    def test_unknown_rate_raises(self, rng):
        with pytest.raises(ConfigurationError):
            puncture(random_bits(10, rng), (5, 6))

    def test_wrong_punctured_length_raises(self):
        with pytest.raises(ConfigurationError):
            depuncture(np.zeros(5), (3, 4), 12)

    def test_viterbi_recovers_through_puncturing(self, rng):
        bits = random_bits(200, rng)
        mother = conv_encode(bits)
        punctured = puncture(mother, (3, 4))
        restored = depuncture(punctured.astype(float), (3, 4), mother.size)
        decoded = viterbi_decode(restored, bits.size)
        assert np.array_equal(decoded, bits)


class TestInterleaver:
    @pytest.mark.parametrize("n_bpsc", [1, 2, 4, 6])
    def test_roundtrip(self, n_bpsc, rng):
        n_cbps = 48 * n_bpsc
        bits = random_bits(n_cbps * 3, rng)
        assert np.array_equal(deinterleave(interleave(bits, n_bpsc), n_bpsc), bits)

    def test_interleaving_is_a_permutation(self, rng):
        n_bpsc = 4
        n_cbps = 48 * n_bpsc
        bits = np.arange(n_cbps, dtype=np.int64)
        shuffled = interleave(bits, n_bpsc)
        assert sorted(shuffled.tolist()) == sorted(bits.tolist())
        assert not np.array_equal(shuffled, bits)

    def test_adjacent_bits_are_spread_apart(self, rng):
        """Adjacent coded bits must land on different subcarriers."""
        n_bpsc = 2
        n_cbps = 96
        positions = interleave(np.arange(n_cbps), n_bpsc)
        # Find where bits 0 and 1 ended up; their subcarrier indices
        # (position // n_bpsc) must differ.
        where_0 = int(np.where(positions == 0)[0][0])
        where_1 = int(np.where(positions == 1)[0][0])
        assert where_0 // n_bpsc != where_1 // n_bpsc

    def test_wrong_length_raises(self, rng):
        with pytest.raises(DimensionError):
            interleave(random_bits(47, rng), 1)


class TestCodec:
    @pytest.mark.parametrize("mcs", MCS_TABLE, ids=[f"mcs{m.index}" for m in MCS_TABLE])
    def test_roundtrip_every_mcs(self, mcs, rng):
        codec = Codec(mcs)
        bits = random_bits(1000, rng)
        coded = codec.encode(bits)
        assert coded.size % codec.coded_bits_per_symbol == 0
        decoded = codec.decode(coded.astype(float), bits.size)
        assert np.array_equal(decoded, bits)

    def test_output_fills_whole_ofdm_symbols(self, rng):
        codec = Codec(MCS_TABLE[4])
        for n_bits in (1, 10, 100, 777):
            coded = codec.encode(random_bits(n_bits, rng))
            assert coded.size % codec.coded_bits_per_symbol == 0

    def test_symbol_count_matches_rate_table(self):
        codec = Codec(MCS_TABLE[5])  # 18 Mb/s at 10 MHz -> 144 bits per symbol
        assert codec.n_ofdm_symbols(1440) == pytest.approx(11, abs=1)

    def test_wrong_coded_length_raises(self, rng):
        codec = Codec(MCS_TABLE[0])
        with pytest.raises(DimensionError):
            codec.decode(np.zeros(10), 100)

    def test_corrects_channel_errors(self, rng):
        codec = Codec(MCS_TABLE[2])
        bits = random_bits(800, rng)
        coded = codec.encode(bits).astype(float)
        flip = rng.choice(coded.size, size=int(coded.size * 0.01), replace=False)
        coded[flip] = 1 - coded[flip]
        decoded = codec.decode(coded, bits.size)
        assert bit_error_rate(decoded, bits) < 0.01

    @given(
        n_bits=st.integers(1, 600),
        mcs_index=st.integers(0, 7),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, n_bits, mcs_index, seed):
        rng = np.random.default_rng(seed)
        codec = Codec(MCS_TABLE[mcs_index])
        bits = random_bits(n_bits, rng)
        assert np.array_equal(codec.decode(codec.encode(bits).astype(float), n_bits), bits)
