"""Tests for constellation mapping and demapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DimensionError
from repro.phy.modulation import MODULATIONS, get_modulation
from repro.utils.bits import random_bits


class TestConstellations:
    @pytest.mark.parametrize("name", ["bpsk", "qpsk", "16qam", "64qam"])
    def test_unit_average_energy(self, name):
        modulation = get_modulation(name)
        energy = np.mean(np.abs(modulation.points) ** 2)
        assert energy == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("name,expected", [("bpsk", 1), ("qpsk", 2), ("16qam", 4), ("64qam", 6)])
    def test_bits_per_symbol(self, name, expected):
        assert get_modulation(name).bits_per_symbol == expected

    @pytest.mark.parametrize("name", ["bpsk", "qpsk", "16qam", "64qam"])
    def test_points_are_distinct(self, name):
        points = get_modulation(name).points
        distances = np.abs(points[:, None] - points[None, :])
        np.fill_diagonal(distances, np.inf)
        assert distances.min() > 1e-6

    def test_gray_mapping_neighbours_differ_by_one_bit(self):
        """Adjacent QAM points along one axis must differ in exactly one bit."""
        modulation = get_modulation("16qam")
        points = modulation.points
        # Find, for each point, its nearest neighbours and check Hamming distance.
        labels = np.arange(len(points))
        for label in labels:
            distances = np.abs(points - points[label])
            distances[label] = np.inf
            nearest = np.argmin(distances)
            hamming = bin(label ^ int(nearest)).count("1")
            assert hamming == 1

    def test_aliases(self):
        assert get_modulation("4qam") is get_modulation("qpsk")
        assert get_modulation("QAM64") is get_modulation("64qam")

    def test_unknown_modulation_raises(self):
        with pytest.raises(ConfigurationError):
            get_modulation("1024qam")


class TestMapping:
    @pytest.mark.parametrize("name", list(MODULATIONS))
    def test_hard_decision_roundtrip(self, name, rng):
        modulation = get_modulation(name)
        bits = random_bits(modulation.bits_per_symbol * 100, rng)
        symbols = modulation.modulate(bits)
        assert symbols.shape == (100,)
        recovered = modulation.demodulate_hard(symbols)
        assert np.array_equal(recovered, bits)

    @pytest.mark.parametrize("name", list(MODULATIONS))
    def test_roundtrip_with_small_noise(self, name, rng):
        modulation = get_modulation(name)
        bits = random_bits(modulation.bits_per_symbol * 200, rng)
        symbols = modulation.modulate(bits)
        noisy = symbols + 0.01 * (rng.standard_normal(200) + 1j * rng.standard_normal(200))
        assert np.array_equal(modulation.demodulate_hard(noisy), bits)

    def test_wrong_bit_count_raises(self, rng):
        with pytest.raises(DimensionError):
            get_modulation("16qam").modulate(random_bits(5, rng))

    def test_soft_llr_signs_match_hard_decisions(self, rng):
        modulation = get_modulation("qpsk")
        bits = random_bits(200, rng)
        symbols = modulation.modulate(bits)
        llrs = modulation.demodulate_soft(symbols, noise_var=0.1)
        hard_from_soft = (llrs < 0).astype(np.int8)
        assert np.array_equal(hard_from_soft, bits)

    def test_soft_llr_magnitude_grows_with_confidence(self):
        modulation = get_modulation("bpsk")
        clean = modulation.modulate(np.array([0], dtype=np.int8))
        llr_clean = modulation.demodulate_soft(clean, noise_var=1.0)
        llr_noisy = modulation.demodulate_soft(clean * 0.2, noise_var=1.0)
        assert abs(llr_clean[0]) > abs(llr_noisy[0])

    @given(seed=st.integers(0, 1000), name=st.sampled_from(["bpsk", "qpsk", "16qam", "64qam"]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, name):
        rng = np.random.default_rng(seed)
        modulation = get_modulation(name)
        bits = random_bits(modulation.bits_per_symbol * 16, rng)
        assert np.array_equal(modulation.demodulate_hard(modulation.modulate(bits)), bits)


class TestErrorProbabilities:
    def test_ber_decreases_with_snr(self):
        modulation = get_modulation("16qam")
        bers = [modulation.bit_error_probability(snr) for snr in (0, 10, 20, 30)]
        assert all(b1 > b2 for b1, b2 in zip(bers, bers[1:]))

    def test_higher_order_modulations_need_more_snr(self):
        snr = 12.0
        assert get_modulation("bpsk").bit_error_probability(snr) < get_modulation(
            "64qam"
        ).bit_error_probability(snr)

    def test_probability_is_bounded(self):
        for name in MODULATIONS:
            modulation = get_modulation(name)
            assert 0 <= modulation.symbol_error_probability(-20) <= 1
            assert 0 <= modulation.symbol_error_probability(40) <= 1
