"""Tests for training fields and preamble correlation."""

import numpy as np
import pytest

from repro.constants import SHORT_TRAINING_SYMBOL_LENGTH
from repro.exceptions import DimensionError
from repro.phy.preamble import (
    Preamble,
    correlation_peak,
    cross_correlate,
    long_training_field,
    long_training_symbol,
    mimo_preamble,
    short_training_field,
)


class TestTrainingFields:
    def test_stf_is_periodic(self):
        stf = short_training_field()
        period = SHORT_TRAINING_SYMBOL_LENGTH
        assert len(stf) == 160
        assert np.allclose(stf[:period], stf[period : 2 * period], atol=1e-10)

    def test_stf_has_unit_scale_power(self):
        stf = short_training_field()
        assert np.mean(np.abs(stf) ** 2) > 0

    def test_ltf_length(self):
        assert len(long_training_symbol()) == 80
        assert len(long_training_field()) == 160

    def test_ltf_repeats(self):
        field = long_training_field()
        assert np.allclose(field[:80], field[80:], atol=1e-12)


class TestMimoPreamble:
    @pytest.mark.parametrize("n_antennas", [1, 2, 3, 4])
    def test_length_scales_with_antennas(self, n_antennas):
        preamble = mimo_preamble(n_antennas)
        assert preamble.length == 160 + n_antennas * 160

    def test_ltf_slots_are_time_orthogonal(self):
        preamble = mimo_preamble(3)
        samples = preamble.per_antenna_samples()
        for antenna in range(3):
            start, end = preamble.ltf_slot_bounds(antenna)
            for other in range(3):
                slot = samples[other, start:end]
                if other == antenna:
                    assert np.linalg.norm(slot) > 0
                else:
                    assert np.allclose(slot, 0)

    def test_all_antennas_share_the_stf(self):
        preamble = mimo_preamble(2)
        samples = preamble.per_antenna_samples()
        assert np.linalg.norm(samples[0, :160]) > 0
        assert np.linalg.norm(samples[1, :160]) > 0

    def test_invalid_antenna_index(self):
        with pytest.raises(DimensionError):
            mimo_preamble(2).ltf_slot_bounds(5)

    def test_zero_antennas_rejected(self):
        with pytest.raises(DimensionError):
            Preamble(n_antennas=0)


class TestCrossCorrelation:
    def test_detects_template_in_noise(self, rng):
        stf = short_training_field()
        noise = 0.05 * (rng.standard_normal(1000) + 1j * rng.standard_normal(1000))
        signal = noise.copy()
        signal[300 : 300 + len(stf)] += stf
        correlation = cross_correlate(signal, stf)
        assert int(np.argmax(correlation)) == 300
        assert correlation[300] > 0.9

    def test_no_template_gives_low_correlation(self, rng):
        stf = short_training_field()
        noise = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        assert correlation_peak(noise, stf) < 0.5

    def test_correlation_is_normalised(self, rng):
        stf = short_training_field()
        signal = np.concatenate([np.zeros(50), 5.0 * stf, np.zeros(50)])
        assert correlation_peak(signal, stf) == pytest.approx(1.0, abs=1e-6)

    def test_short_signal_returns_empty(self):
        stf = short_training_field()
        assert cross_correlate(np.zeros(10, dtype=complex), stf).size == 0

    def test_empty_template_raises(self):
        with pytest.raises(DimensionError):
            cross_correlate(np.zeros(100, dtype=complex), np.zeros(0, dtype=complex))

    def test_phase_rotation_does_not_hurt_correlation(self, rng):
        """Correlation magnitude must be invariant to a carrier phase."""
        stf = short_training_field()
        rotated = stf * np.exp(1j * 1.3)
        assert correlation_peak(rotated, stf) == pytest.approx(1.0, abs=1e-6)
