"""Tests for frequency-offset estimation and packet detection."""

import numpy as np
import pytest

from repro.exceptions import SynchronizationError
from repro.phy.cfo import apply_cfo, correct_cfo, estimate_cfo, residual_cfo_after_compensation
from repro.phy.preamble import short_training_field
from repro.phy.sync import delay_and_correlate, detect_packet, symbol_timing_offset
from repro.channel.models import awgn


SAMPLE_RATE = 10e6


class TestCfo:
    @pytest.mark.parametrize("cfo_hz", [-5000.0, -500.0, 0.0, 1234.0, 8000.0])
    def test_estimates_offset_from_stf(self, cfo_hz, rng):
        stf = short_training_field()
        shifted = apply_cfo(stf, cfo_hz, SAMPLE_RATE)
        estimate = estimate_cfo(shifted, period=16, sample_rate_hz=SAMPLE_RATE)
        assert estimate == pytest.approx(cfo_hz, abs=50.0)

    def test_estimate_with_noise(self, rng):
        stf = short_training_field()
        shifted = awgn(apply_cfo(stf, 3000.0, SAMPLE_RATE), 0.01, rng)
        estimate = estimate_cfo(shifted, 16, SAMPLE_RATE)
        assert estimate == pytest.approx(3000.0, abs=300.0)

    def test_correction_restores_signal(self):
        stf = short_training_field()
        shifted = apply_cfo(stf, 2500.0, SAMPLE_RATE)
        corrected = correct_cfo(shifted, 2500.0, SAMPLE_RATE)
        assert np.allclose(corrected, stf, atol=1e-9)

    def test_apply_then_apply_negative_is_identity(self):
        samples = np.exp(1j * np.linspace(0, 20, 500))
        out = apply_cfo(apply_cfo(samples, 1000.0, SAMPLE_RATE), -1000.0, SAMPLE_RATE)
        assert np.allclose(out, samples, atol=1e-9)

    def test_too_short_input_raises(self):
        with pytest.raises(SynchronizationError):
            estimate_cfo(np.zeros(10, dtype=complex), 16, SAMPLE_RATE)

    def test_residual_helper(self):
        assert residual_cfo_after_compensation(1000.0, 980.0) == pytest.approx(20.0)

    def test_start_index_shifts_phase_consistently(self):
        samples = np.ones(100, dtype=complex)
        a = apply_cfo(samples, 1000.0, SAMPLE_RATE, start_index=0)
        b = apply_cfo(samples, 1000.0, SAMPLE_RATE, start_index=50)
        assert np.allclose(a[50:], b[:50], atol=1e-12)


class TestPacketDetection:
    def _frame_in_noise(self, rng, start=400, snr_scale=1.0):
        stf = short_training_field() * snr_scale
        signal = 0.02 * (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
        signal[start : start + len(stf)] += stf
        return signal

    def test_plateau_metric_peaks_inside_preamble(self, rng):
        signal = self._frame_in_noise(rng)
        metric = delay_and_correlate(signal)
        assert metric[420:520].max() > 0.8

    def test_detects_packet_and_start(self, rng):
        signal = self._frame_in_noise(rng)
        detection = detect_packet(signal)
        assert detection.detected
        assert abs(detection.start_index - 400) <= 16

    def test_no_packet_in_pure_noise(self, rng):
        noise = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        assert not detect_packet(noise, threshold=0.8).detected

    def test_timing_refinement_stays_close(self, rng):
        from repro.phy.preamble import long_training_field

        stf = short_training_field()
        ltf = long_training_field()
        frame = np.concatenate([stf, ltf])
        signal = 0.01 * (rng.standard_normal(1500) + 1j * rng.standard_normal(1500))
        signal[300 : 300 + len(frame)] += frame
        refined = symbol_timing_offset(signal, coarse_start=302)
        assert abs(refined - 300) <= 8
