"""Tests for least-squares MIMO channel estimation."""

import numpy as np
import pytest

from repro.channel.models import awgn
from repro.channel.multipath import MultipathChannel
from repro.exceptions import DimensionError
from repro.phy.channel_est import (
    _estimate_mimo_channel_reference,
    estimate_channel_from_ltf,
    estimate_mimo_channel,
)
from repro.phy.ofdm import OfdmConfig
from repro.phy.preamble import Preamble, long_training_field


class TestSisoEstimation:
    def test_flat_channel_recovered_exactly(self, rng):
        gain = 0.8 - 0.3j
        received = gain * long_training_field()
        estimate = estimate_channel_from_ltf(received)
        occupied = np.abs(estimate) > 0
        assert np.allclose(estimate[occupied], gain, atol=1e-9)

    def test_estimate_improves_with_clean_signal(self, rng):
        gain = 1.0 + 0.5j
        clean = gain * long_training_field()
        noisy = awgn(clean, 0.01, rng)
        clean_est = estimate_channel_from_ltf(clean)
        noisy_est = estimate_channel_from_ltf(noisy)
        occupied = np.abs(clean_est) > 0
        clean_error = np.mean(np.abs(clean_est[occupied] - gain) ** 2)
        noisy_error = np.mean(np.abs(noisy_est[occupied] - gain) ** 2)
        assert clean_error < noisy_error


class TestMimoEstimation:
    @pytest.mark.parametrize("n_tx,n_rx", [(1, 1), (2, 2), (3, 3), (2, 3), (3, 2)])
    def test_flat_mimo_channel_recovered(self, n_tx, n_rx, rng):
        preamble = Preamble(n_antennas=n_tx)
        tx_samples = preamble.per_antenna_samples()
        channel = rng.standard_normal((n_rx, n_tx)) + 1j * rng.standard_normal((n_rx, n_tx))
        received = channel @ tx_samples
        estimate = estimate_mimo_channel(received, preamble)
        assert estimate.n_rx == n_rx and estimate.n_tx == n_tx
        for k in estimate.valid_bins:
            assert np.allclose(estimate.at(k), channel, atol=1e-6)

    def test_frequency_selective_channel_matches_response(self, rng):
        preamble = Preamble(n_antennas=2)
        tx_samples = preamble.per_antenna_samples()
        channel = MultipathChannel.random(2, 2, rng, n_taps=4)
        received = channel.apply(tx_samples)
        estimate = estimate_mimo_channel(received, preamble)
        response = channel.frequency_response(64)
        # The LTF slots start after the STF, so the convolution transient has
        # passed for every slot except possibly the first few samples; the
        # estimate should match the true response closely on valid bins.
        errors = []
        for k in estimate.valid_bins:
            errors.append(np.max(np.abs(estimate.at(k) - response[k])))
        assert np.median(errors) < 0.15

    def test_noise_floor_limits_accuracy(self, rng):
        preamble = Preamble(n_antennas=1)
        tx_samples = preamble.per_antenna_samples()
        channel = np.array([[2.0 + 1.0j]])
        received = awgn(channel @ tx_samples, 0.05, rng)
        estimate = estimate_mimo_channel(received, preamble)
        errors = [abs(estimate.at(k)[0, 0] - channel[0, 0]) for k in estimate.valid_bins]
        assert np.mean(errors) < 0.3

    def test_average_matrix(self, rng):
        preamble = Preamble(n_antennas=2)
        channel = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        received = channel @ preamble.per_antenna_samples()
        estimate = estimate_mimo_channel(received, preamble)
        assert np.allclose(estimate.average_matrix(), channel, atol=1e-6)

    def test_short_capture_raises(self, rng):
        preamble = Preamble(n_antennas=2)
        with pytest.raises(DimensionError):
            estimate_mimo_channel(np.zeros((2, 100), dtype=complex), preamble)

    def test_preamble_offset_honoured(self, rng):
        preamble = Preamble(n_antennas=1)
        channel = np.array([[1.5 - 0.5j]])
        clean = channel @ preamble.per_antenna_samples()
        padded = np.concatenate([np.zeros((1, 37), dtype=complex), clean], axis=1)
        estimate = estimate_mimo_channel(padded, preamble, preamble_start=37)
        for k in estimate.valid_bins[:5]:
            assert np.allclose(estimate.at(k), channel, atol=1e-6)


class TestBatchedEstimationEquivalence:
    """The stacked all-antenna-pair estimator vs the kept per-pair loop."""

    @pytest.mark.parametrize("n_tx,n_rx", [(1, 1), (2, 2), (3, 3), (2, 3), (3, 2)])
    def test_bit_identical_to_reference(self, n_tx, n_rx, rng):
        preamble = Preamble(n_antennas=n_tx)
        tx_samples = preamble.per_antenna_samples()
        channel = MultipathChannel.random(n_rx, n_tx, rng, n_taps=4)
        received = awgn(channel.apply(tx_samples), 0.02, rng)
        fast = estimate_mimo_channel(received, preamble)
        reference = _estimate_mimo_channel_reference(received, preamble)
        assert np.array_equal(fast.matrices, reference.matrices)
        assert np.array_equal(fast.valid_bins, reference.valid_bins)

    def test_bit_identical_with_preamble_offset(self, rng):
        preamble = Preamble(n_antennas=3)
        tx_samples = preamble.per_antenna_samples()
        channel = MultipathChannel.random(2, 3, rng, n_taps=3)
        clean = channel.apply(tx_samples)
        padded = np.concatenate([np.zeros((2, 41), dtype=complex), clean], axis=1)
        fast = estimate_mimo_channel(padded, preamble, preamble_start=41)
        reference = _estimate_mimo_channel_reference(padded, preamble, preamble_start=41)
        assert np.array_equal(fast.matrices, reference.matrices)

    def test_bit_identical_for_1d_input(self, rng):
        preamble = Preamble(n_antennas=1)
        received = (0.7 + 0.2j) * preamble.per_antenna_samples()[0]
        fast = estimate_mimo_channel(received, preamble)
        reference = _estimate_mimo_channel_reference(received, preamble)
        assert np.array_equal(fast.matrices, reference.matrices)

    def test_short_capture_raises_like_reference(self):
        preamble = Preamble(n_antennas=2)
        with pytest.raises(DimensionError):
            estimate_mimo_channel(np.zeros((2, 100), dtype=complex), preamble)
        with pytest.raises(DimensionError):
            _estimate_mimo_channel_reference(np.zeros((2, 100), dtype=complex), preamble)
