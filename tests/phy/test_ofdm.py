"""Tests for the OFDM modulator/demodulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import CYCLIC_PREFIX_LENGTH, NUM_DATA_SUBCARRIERS, NUM_SUBCARRIERS
from repro.exceptions import DimensionError
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import OfdmConfig, OfdmModem
from repro.utils.bits import random_bits


class TestOfdmConfig:
    def test_default_numerology(self):
        config = OfdmConfig()
        assert config.fft_size == NUM_SUBCARRIERS
        assert config.cp_length == CYCLIC_PREFIX_LENGTH
        assert config.n_data_subcarriers == NUM_DATA_SUBCARRIERS
        assert config.samples_per_symbol == 80

    def test_data_pilot_null_partition(self):
        config = OfdmConfig()
        data = set(config.data_indices)
        pilots = set(config.pilot_indices)
        nulls = set(config.null_indices)
        assert data.isdisjoint(pilots)
        assert data.isdisjoint(nulls)
        assert pilots.isdisjoint(nulls)
        assert len(data) + len(pilots) + len(nulls) == config.fft_size


class TestRoundtrip:
    def test_grid_roundtrip(self, rng):
        modem = OfdmModem()
        grid = rng.standard_normal((5, 64)) + 1j * rng.standard_normal((5, 64))
        samples = modem.modulate_grid(grid)
        assert samples.size == 5 * 80
        recovered = modem.demodulate_grid(samples)
        assert np.allclose(recovered, grid, atol=1e-10)

    def test_data_symbol_roundtrip(self, rng):
        modem = OfdmModem()
        modulation = get_modulation("16qam")
        bits = random_bits(4 * NUM_DATA_SUBCARRIERS * 3, rng)
        symbols = modulation.modulate(bits)
        samples = modem.modulate(symbols)
        recovered = modem.demodulate(samples)
        assert np.allclose(recovered, symbols, atol=1e-10)

    def test_cyclic_prefix_is_a_copy_of_the_tail(self, rng):
        modem = OfdmModem()
        grid = rng.standard_normal((1, 64)) + 1j * rng.standard_normal((1, 64))
        samples = modem.modulate_grid(grid)
        assert np.allclose(samples[:16], samples[64:80], atol=1e-12)

    def test_power_is_preserved(self, rng):
        """The unitary-scaled IFFT keeps the average sample power equal to
        the average subcarrier power."""
        modem = OfdmModem()
        grid = rng.standard_normal((20, 64)) + 1j * rng.standard_normal((20, 64))
        samples = modem.modulate_grid(grid)
        body = samples.reshape(20, 80)[:, 16:]
        assert np.mean(np.abs(body) ** 2) == pytest.approx(np.mean(np.abs(grid) ** 2), rel=1e-6)

    def test_wrong_sample_count_raises(self, rng):
        modem = OfdmModem()
        with pytest.raises(DimensionError):
            modem.demodulate_grid(np.zeros(81, dtype=complex))

    def test_wrong_symbol_count_raises(self, rng):
        modem = OfdmModem()
        with pytest.raises(DimensionError):
            modem.modulate(np.zeros(47, dtype=complex))

    def test_n_symbols_helper(self):
        modem = OfdmModem()
        assert modem.n_symbols(800) == 10
        assert modem.n_symbols(79) == 0

    @given(n_symbols=st.integers(1, 6), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n_symbols, seed):
        rng = np.random.default_rng(seed)
        modem = OfdmModem()
        grid = rng.standard_normal((n_symbols, 64)) + 1j * rng.standard_normal((n_symbols, 64))
        assert np.allclose(modem.demodulate_grid(modem.modulate_grid(grid)), grid, atol=1e-9)


class TestMultipathTolerance:
    def test_cp_absorbs_short_multipath(self, rng):
        """A channel shorter than the CP must look like a per-subcarrier
        complex gain (no inter-symbol interference)."""
        from repro.channel.multipath import MultipathChannel

        modem = OfdmModem()
        grid = rng.standard_normal((6, 64)) + 1j * rng.standard_normal((6, 64))
        samples = modem.modulate_grid(grid)
        channel = MultipathChannel.random(1, 1, rng, n_taps=8)
        received = channel.apply(samples.reshape(1, -1))[0]
        recovered = modem.demodulate_grid(received)
        response = channel.frequency_response(64)[:, 0, 0]
        # Skip the first symbol (transient of the convolution).
        expected = grid[1:] * response[None, :]
        assert np.allclose(recovered[1:], expected, atol=1e-6)
