"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands_parse(self):
        parser = build_parser()
        for command in (
            "fig9", "fig11", "fig12", "fig13", "handshake", "scenarios",
            "protocols", "sweep", "all",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options_have_defaults(self):
        args = build_parser().parse_args(["fig12"])
        assert args.runs > 0
        assert args.duration_ms > 0
        assert args.seed == 0

    def test_option_overrides(self):
        args = build_parser().parse_args(
            ["fig12", "--runs", "3", "--duration-ms", "25", "--seed", "9"]
        )
        assert args.runs == 3
        assert args.duration_ms == 25.0
        assert args.seed == 9

    def test_sweep_options(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--scenario", "dense-lan-20",
                "--protocols", "802.11n,n+",
                "--workers", "4",
                "--cache-dir", "/tmp/cache",
            ]
        )
        assert args.scenario == "dense-lan-20"
        assert args.protocols == "802.11n,n+"
        assert args.workers == 4
        assert args.cache_dir == "/tmp/cache"


class TestMain:
    def test_handshake_command_runs(self, capsys):
        exit_code = main(["handshake", "--trials", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "handshake overhead" in captured.out

    def test_fig9_command_runs(self, capsys):
        exit_code = main(["fig9", "--trials", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "power jump" in captured.out

    def test_fig12_command_runs_quickly(self, capsys):
        exit_code = main(["fig12", "--runs", "1", "--duration-ms", "10", "--subcarriers", "8"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "802.11n" in captured.out

    def test_scenarios_command_lists_registry(self, capsys):
        exit_code = main(["scenarios"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("three-pair", "dense-lan-20", "dense-lan-50"):
            assert name in captured.out

    def test_protocols_command_lists_registry(self, capsys):
        exit_code = main(["protocols"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("csma", "802.11n", "beamforming", "n+"):
            assert name in captured.out
        for param in ("recovery", "retry_cap", "erasure_k", "erasure_n"):
            assert param in captured.out

    def test_sweep_accepts_parameterised_specs(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--scenario", "three-pair",
            "--protocols", "csma,csma[retry_cap=3]",
            "--runs", "1",
            "--duration-ms", "8",
            "--subcarriers", "8",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "csma[retry_cap=3]" in out

    def test_sweep_rejects_bad_specs_before_simulating(self, capsys, tmp_path):
        from repro.exceptions import ConfigurationError

        argv = [
            "sweep",
            "--scenario", "three-pair",
            "--protocols", "csma,aloha",
            "--runs", "1",
            "--cache-dir", str(tmp_path),
        ]
        with pytest.raises(ConfigurationError, match="registered variants"):
            main(argv)
        assert not list(tmp_path.glob("*.json"))

    def test_sweep_command_runs_with_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--scenario", "three-pair",
            "--protocols", "802.11n,n+",
            "--runs", "1",
            "--duration-ms", "8",
            "--subcarriers", "8",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cell(s) from cache, 2 simulated" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 cell(s) from cache, 0 simulated" in second


class TestDurableSweepCommands:
    def _sweep_argv(self, tmp_path, extra=()):
        return [
            "sweep",
            "--scenario", "three-pair",
            "--protocols", "802.11n,n+",
            "--runs", "1",
            "--duration-ms", "8",
            "--subcarriers", "8",
            "--cache-dir", str(tmp_path),
            *extra,
        ]

    def test_resume_flag_defaults_off(self):
        args = build_parser().parse_args(["sweep"])
        assert args.resume is False
        assert build_parser().parse_args(["sweep", "--resume"]).resume is True

    def test_resume_without_a_recorded_manifest_is_rejected(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="nothing to resume"):
            main(self._sweep_argv(tmp_path, extra=["--resume"]))

    def test_resume_after_a_completed_sweep_replays_from_cache(self, capsys, tmp_path):
        assert main(self._sweep_argv(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._sweep_argv(tmp_path, extra=["--resume"])) == 0
        assert "2 cell(s) from cache, 0 simulated" in capsys.readouterr().out

    def test_results_command_requires_a_cache_dir(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="cache-dir"):
            main(["results"])

    def test_results_command_reports_sweeps_and_cells(self, capsys, tmp_path):
        assert main(self._sweep_argv(tmp_path)) == 0
        capsys.readouterr()
        assert main(["results", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "three-pair" in out
        assert "802.11n,n+" in out

    def test_results_command_on_an_empty_store(self, capsys, tmp_path):
        assert main(["results", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no sweep manifests recorded" in out
        assert "no cells recorded" in out
