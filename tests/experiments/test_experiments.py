"""Tests for the figure-reproduction experiments (small configurations).

These tests assert the *shape* of each result -- the qualitative claims
the paper makes -- using run sizes small enough for a unit-test suite.
The full-size sweeps live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments.fig9_carrier_sense import run_carrier_sense_experiment, summarize as s9
from repro.experiments.fig11_nulling_alignment import (
    run_alignment_experiment,
    run_nulling_experiment,
    summarize as s11,
)
from repro.experiments.fig12_throughput import run_throughput_experiment, summarize as s12
from repro.experiments.fig13_heterogeneous import run_heterogeneous_experiment, summarize as s13
from repro.experiments.handshake_overhead import run_handshake_experiment, summarize as sh
from repro.experiments.report import format_cdf_summary, format_table, percentile_row
from repro.sim.runner import SimulationConfig


class TestReportHelpers:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_percentile_row(self):
        row = percentile_row(list(range(101)))
        assert row[2] == pytest.approx(50.0)

    def test_cdf_summary_contains_median(self):
        text = format_cdf_summary("x", [1.0, 2.0, 3.0])
        assert "median=2.0" in text


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_carrier_sense_experiment(n_trials=8, seed=1)

    def test_projection_reveals_the_hidden_transmission(self, result):
        assert result.power_jump_db_with_projection > result.power_jump_db_without_projection + 3.0

    def test_raw_power_jump_is_small(self, result):
        assert abs(result.power_jump_db_without_projection) < 3.0

    def test_projection_improves_correlation_distinguishability(self, result):
        assert (
            result.nondistinguishable_fraction_projected
            <= result.nondistinguishable_fraction_raw
        )

    def test_projected_correlations_separate_cleanly(self, result):
        assert result.nondistinguishable_fraction_projected < 0.25

    def test_summary_renders(self, result):
        assert "power jump" in s9(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def nulling(self):
        return run_nulling_experiment(n_trials=250, seed=2)

    @pytest.fixture(scope="class")
    def alignment(self):
        return run_alignment_experiment(n_trials=250, seed=3)

    def test_reductions_are_losses(self, nulling):
        for values in nulling.reductions_db.values():
            assert all(value <= 0.5 for value in values)

    def test_loss_grows_with_interferer_snr(self, nulling):
        low = [v for (u, _), vs in nulling.reductions_db.items() if u == 0 for v in vs]
        high = [v for (u, _), vs in nulling.reductions_db.items() if u == 4 for v in vs]
        assert np.mean(high) < np.mean(low)

    def test_average_loss_below_threshold_is_small(self, nulling, alignment):
        assert -2.0 < nulling.average_reduction_below_threshold_db < 0.0
        assert -2.5 < alignment.average_reduction_below_threshold_db < 0.0

    def test_alignment_loses_more_than_nulling(self, nulling, alignment):
        assert (
            alignment.average_reduction_below_threshold_db
            <= nulling.average_reduction_below_threshold_db + 0.1
        )

    def test_summary_renders(self, nulling):
        text = s11(nulling)
        assert "nulling" in text and "unwanted SNR bin" in text


class TestFig12AndFig13:
    @pytest.fixture(scope="class")
    def fig12(self):
        config = SimulationConfig(duration_us=30_000.0, n_subcarriers=8)
        return run_throughput_experiment(n_runs=3, seed=5, config=config)

    @pytest.fixture(scope="class")
    def fig13(self):
        config = SimulationConfig(duration_us=30_000.0, n_subcarriers=8)
        return run_heterogeneous_experiment(n_runs=3, seed=6, config=config)

    def test_fig12_nplus_improves_total_throughput(self, fig12):
        assert fig12.average_total("n+") > fig12.average_total("802.11n")

    def test_fig12_multi_antenna_pairs_gain_most(self, fig12):
        assert fig12.pair_gain("tx3->rx3") > fig12.pair_gain("tx1->rx1")

    def test_fig12_summary_contains_gain_table(self, fig12):
        assert "throughput gain" in s12(fig12)

    def test_fig13_ordering(self, fig13):
        assert fig13.mean_gain_over("802.11n") > 1.0
        assert fig13.mean_gain_over("beamforming") > 0.9

    def test_fig13_ap_flows_gain(self, fig13):
        assert fig13.mean_gain_over("802.11n", "AP2->c2+c3") > 1.2

    def test_fig13_summary_renders(self, fig13):
        assert "Fig. 13(a)" in s13(fig13)


class TestHandshakeOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        return run_handshake_experiment(n_channels=15, seed=7)

    def test_feedback_fits_in_a_few_symbols(self, result):
        assert 1.0 <= result.mean_feedback_symbols <= 4.5

    def test_overhead_is_a_few_percent(self, result):
        assert 0.01 < result.overhead_fraction < 0.12

    def test_summary_renders(self, result):
        assert "overhead" in sh(result)

    def test_batched_subspaces_match_reference(self):
        """The one-shot batched SVD equals the per-subcarrier loop."""
        from repro.channel.testbed import default_testbed
        from repro.experiments.handshake_overhead import _alignment_subspaces_reference
        from repro.utils.linalg import orthonormal_complement_batch

        rng = np.random.default_rng(3)
        testbed = default_testbed()
        a, b = testbed.place_nodes(2, rng)
        link = testbed.link(a, b, n_tx=1, n_rx=2, rng=rng)
        response = link.frequency_response(64)
        reference = _alignment_subspaces_reference(response)
        batched = orthonormal_complement_batch(response, 1)
        np.testing.assert_allclose(batched, reference, atol=1e-12)
