"""Tests for MAC frames and bitrate selection."""

import numpy as np
import pytest

from repro.mac.bitrate import HistoricalRateController, choose_bitrate
from repro.mac.frames import AckHeader, DataHeader, Packet
from repro.phy.rates import MCS_TABLE


class TestPacket:
    def test_size_in_bits(self):
        assert Packet(source=0, destination=1, size_bytes=1500).size_bits == 12000

    def test_defaults(self):
        packet = Packet(source=3, destination=4)
        assert packet.size_bytes == 1500
        assert packet.retries == 0


class TestHeaders:
    def test_data_header_stream_count(self):
        header = DataHeader(
            transmitter_id=2,
            receiver_ids=[3, 4],
            streams_per_receiver=[2, 1],
            n_antennas=3,
            duration_us=500.0,
        )
        assert header.n_streams == 3

    def test_ack_header_unwanted_space_flag(self):
        with_space = AckHeader(
            receiver_id=1, transmitter_id=2, mcs_index=3, n_wanted_streams=1, n_antennas=2
        )
        without_space = AckHeader(
            receiver_id=1, transmitter_id=2, mcs_index=3, n_wanted_streams=2, n_antennas=2
        )
        assert with_space.has_unwanted_space
        assert not without_space.has_unwanted_space


class TestChooseBitrate:
    def test_extreme_snrs(self):
        assert choose_bitrate([40.0] * 16).index == len(MCS_TABLE) - 1
        assert choose_bitrate([-5.0] * 16).index == 0

    def test_margin_lowers_selection(self):
        snrs = [13.0] * 16
        assert choose_bitrate(snrs, margin_db=4.0).index <= choose_bitrate(snrs).index


class TestHistoricalRateController:
    def test_starts_optimistic(self):
        controller = HistoricalRateController()
        assert controller.select().index == len(MCS_TABLE) - 1

    def test_failures_move_selection_down(self, rng):
        controller = HistoricalRateController()
        top = MCS_TABLE[-1]
        for _ in range(20):
            controller.record(top, delivered=False)
        assert controller.select().index < top.index

    def test_successes_restore_confidence(self):
        controller = HistoricalRateController()
        top = MCS_TABLE[-1]
        for _ in range(10):
            controller.record(top, delivered=False)
        for _ in range(40):
            controller.record(top, delivered=True)
        assert controller.select().index == top.index

    def test_delivery_estimate_bounded(self):
        controller = HistoricalRateController()
        mcs = MCS_TABLE[2]
        for _ in range(50):
            controller.record(mcs, delivered=True)
        assert 0.0 <= controller.delivery_estimate(mcs) <= 1.0
