"""Tests for the L-threshold rule and fragmentation/aggregation."""

import numpy as np
import pytest

from repro.constants import INTERFERENCE_ADMISSION_THRESHOLD_DB
from repro.exceptions import MediumAccessError
from repro.mac.aggregation import FragmentationDecision, airtime_for_bits, bits_in_airtime, fill_airtime
from repro.mac.frames import Packet
from repro.mac.power_control import (
    admission_power_scale,
    interference_power_db,
    may_join_at_full_power,
)
from repro.phy.rates import MCS_TABLE
from repro.utils.db import db_to_linear


class TestInterferencePower:
    def test_known_channel(self):
        channel = np.full((1, 2), np.sqrt(10.0), dtype=complex)
        assert interference_power_db(channel, noise_power=1.0) == pytest.approx(10.0, abs=0.01)

    def test_scales_with_tx_power(self, rng):
        channel = rng.standard_normal((2, 3)) + 1j * rng.standard_normal((2, 3))
        full = interference_power_db(channel, tx_power=1.0)
        reduced = interference_power_db(channel, tx_power=0.1)
        assert full - reduced == pytest.approx(10.0, abs=1e-6)

    def test_per_subcarrier_channel_averaged(self, rng):
        channel = rng.standard_normal((16, 2, 3)) + 1j * rng.standard_normal((16, 2, 3))
        value = interference_power_db(channel)
        assert np.isfinite(value)


class TestAdmission:
    def test_below_threshold_keeps_full_power(self):
        assert admission_power_scale([10.0, 20.0]) == 1.0
        assert may_join_at_full_power([26.9])

    def test_above_threshold_scales_down(self):
        scale = admission_power_scale([INTERFERENCE_ADMISSION_THRESHOLD_DB + 6.0])
        assert scale == pytest.approx(db_to_linear(-6.0))
        assert not may_join_at_full_power([INTERFERENCE_ADMISSION_THRESHOLD_DB + 6.0])

    def test_worst_receiver_governs(self):
        scale = admission_power_scale([10.0, INTERFERENCE_ADMISSION_THRESHOLD_DB + 3.0])
        assert scale == pytest.approx(db_to_linear(-3.0))

    def test_no_receivers_means_full_power(self):
        assert admission_power_scale([]) == 1.0

    def test_custom_threshold(self):
        assert admission_power_scale([25.0], threshold_db=20.0) == pytest.approx(
            db_to_linear(-5.0)
        )


class TestAirtime:
    def test_bits_in_airtime_rounds_down_to_symbols(self):
        mcs = MCS_TABLE[0]  # 24 data bits per 8 us symbol
        assert bits_in_airtime(mcs, 8.0) == 24
        assert bits_in_airtime(mcs, 15.9) == 24
        assert bits_in_airtime(mcs, 16.0) == 48

    def test_bits_in_airtime_scales_with_streams(self):
        mcs = MCS_TABLE[4]
        assert bits_in_airtime(mcs, 80.0, n_streams=2) == 2 * bits_in_airtime(mcs, 80.0)

    def test_zero_airtime(self):
        assert bits_in_airtime(MCS_TABLE[3], 0.0) == 0

    def test_roundtrip_with_airtime_for_bits(self):
        mcs = MCS_TABLE[5]
        bits = 12000
        airtime = airtime_for_bits(mcs, bits)
        assert bits_in_airtime(mcs, airtime) >= bits


class TestFillAirtime:
    def _queue(self):
        return [Packet(0, 1, size_bytes=1500, packet_id=i) for i in range(3)]

    def test_aggregates_whole_packets(self):
        decision = fill_airtime(self._queue(), capacity_bits=24_500)
        assert len(decision.whole_packets) == 2
        assert decision.fragment_bits == 500
        assert decision.total_bits == 24_500

    def test_fragments_when_capacity_is_small(self):
        decision = fill_airtime(self._queue(), capacity_bits=5_000)
        assert decision.whole_packets == []
        assert decision.fragment_bits == 5_000

    def test_no_fragmentation_mode(self):
        decision = fill_airtime(self._queue(), capacity_bits=20_000, allow_fragmentation=False)
        assert len(decision.whole_packets) == 1
        assert decision.fragment_bits == 0
        assert decision.total_bits == 12_000

    def test_empty_queue(self):
        decision = fill_airtime([], capacity_bits=10_000)
        assert decision.total_bits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(MediumAccessError):
            fill_airtime(self._queue(), capacity_bits=-1)
