"""Tests for the light-weight handshake and alignment-space encoding."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel
from repro.exceptions import DimensionError
from repro.mac.handshake import (
    alignment_feedback_symbols,
    differential_decode_subspaces,
    differential_encode_subspaces,
    handshake_overhead,
    quantized_alignment_bits,
)
from repro.phy.rates import MCS_TABLE
from repro.utils.linalg import orthonormal_complement


def _smooth_subspaces(rng, n_subcarriers=64):
    """Per-subcarrier decoding subspaces from a real multipath channel (they
    change slowly across subcarriers, as the paper observes)."""
    channel = MultipathChannel.random(2, 1, rng, n_taps=3)
    response = channel.frequency_response(n_subcarriers)
    out = np.zeros((n_subcarriers, 2, 1), dtype=complex)
    for k in range(n_subcarriers):
        out[k] = orthonormal_complement(response[k])[:, :1]
    return out


class TestDifferentialEncoding:
    def test_roundtrip(self, rng):
        subspaces = _smooth_subspaces(rng)
        first, differences = differential_encode_subspaces(subspaces)
        recovered = differential_decode_subspaces(first, differences)
        assert np.allclose(recovered, subspaces, atol=1e-12)

    def test_shapes(self, rng):
        subspaces = _smooth_subspaces(rng)
        first, differences = differential_encode_subspaces(subspaces)
        assert first.shape == (2, 1)
        assert differences.shape == (63, 2, 1)

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(DimensionError):
            differential_encode_subspaces(np.zeros((4, 2)))

    def test_differences_are_small_on_smooth_channels(self, rng):
        subspaces = _smooth_subspaces(rng)
        _, differences = differential_encode_subspaces(subspaces)
        assert np.median(np.abs(differences)) < np.median(np.abs(subspaces[0]))


class TestFeedbackSize:
    def test_smooth_channel_compresses_well(self, rng):
        subspaces = _smooth_subspaces(rng)
        symbols = alignment_feedback_symbols(subspaces)
        assert 1 <= symbols <= 4

    def test_random_subspaces_cost_more_than_smooth_ones(self, rng):
        smooth = _smooth_subspaces(rng)
        random_subspaces = np.exp(
            2j * np.pi * rng.random((64, 2, 1))
        ) / np.sqrt(2)
        assert quantized_alignment_bits(random_subspaces) > quantized_alignment_bits(smooth)

    def test_bits_grow_with_subspace_size(self, rng):
        small = _smooth_subspaces(rng)
        channel = MultipathChannel.random(3, 2, rng, n_taps=3)
        response = channel.frequency_response(64)
        big = np.zeros((64, 3, 2), dtype=complex)
        for k in range(64):
            big[k] = orthonormal_complement(response[k][:, :1])[:, :2]
        assert quantized_alignment_bits(big) > quantized_alignment_bits(small)


class TestOverhead:
    def test_reference_point_is_about_four_percent(self):
        """§3.5: 2 SIFS + 4 OFDM symbols is ~4 % of a 1500-byte exchange at
        18 Mb/s (counting the extra symbols against the data time)."""
        overhead = handshake_overhead(MCS_TABLE[5], payload_bytes=1500, alignment_symbols=3)
        assert overhead.symbol_fraction == pytest.approx(0.045, abs=0.02)

    def test_overhead_shrinks_for_longer_packets(self):
        short = handshake_overhead(MCS_TABLE[5], payload_bytes=500)
        long = handshake_overhead(MCS_TABLE[5], payload_bytes=3000)
        assert long.fraction < short.fraction

    def test_overhead_grows_at_higher_rates(self):
        slow = handshake_overhead(MCS_TABLE[0])
        fast = handshake_overhead(MCS_TABLE[7])
        assert fast.fraction > slow.fraction

    def test_components_add_up(self):
        overhead = handshake_overhead(MCS_TABLE[4])
        assert overhead.overhead_us == pytest.approx(
            overhead.extra_sifs_us + overhead.extra_symbols * 8.0
        )
