"""The batched transmission planner must produce the same per-subcarrier
pre-coders as a loop over the per-subcarrier reference solver (Eq. 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PrecodingError
from repro.mac.plan import (
    PlannedReceiver,
    ProtectedReceiver,
    plan_initial_transmission,
    plan_join,
)
from repro.mimo.precoder import (
    OwnReceiver,
    ReceiverConstraint,
    compute_precoders,
    compute_precoders_batch,
)
from repro.utils.linalg import orthonormal_complement

N_SUB = 8


def _channels(rng, n_rx, n_tx):
    shape = (N_SUB, n_rx, n_tx)
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)


def _u_perp(rng, n_rx, n_keep):
    out = np.zeros((N_SUB, n_rx, n_keep), dtype=complex)
    for k in range(N_SUB):
        seed = rng.standard_normal((n_rx, n_rx - n_keep)) + 1j * rng.standard_normal(
            (n_rx, n_rx - n_keep)
        )
        out[k] = orthonormal_complement(seed)[:, :n_keep]
    return out


def _reference_join_precoders(n_tx, protected, receivers, total_streams):
    """Per-subcarrier loop over the reference solver (the seed planner)."""
    out = np.zeros((N_SUB, total_streams, n_tx), dtype=complex)
    for k in range(N_SUB):
        ongoing = [p.constraint(k) for p in protected]
        if len(receivers) == 1:
            vectors = compute_precoders(
                n_tx, ongoing=ongoing, own_receivers=None, n_streams=total_streams
            )
        else:
            own = [
                OwnReceiver(
                    channel=r.channel[k],
                    u_perp=r.decoding_subspace(k),
                    n_streams=r.n_streams,
                )
                for r in receivers
            ]
            vectors = compute_precoders(n_tx, ongoing=ongoing, own_receivers=own)
        for index, vector in enumerate(vectors):
            out[k, index] = vector
    return out


class TestPlanJoinBatched:
    def test_single_receiver_null_and_align(self, rng):
        protected = [
            ProtectedReceiver(1, 1, 1, _channels(rng, 1, 4)),
            ProtectedReceiver(2, 2, 1, _channels(rng, 2, 4), u_perp=_u_perp(rng, 2, 1)),
        ]
        receivers = [PlannedReceiver(5, 4, 2, _channels(rng, 4, 4))]
        plan = plan_join(9, 4, protected, receivers)
        reference = _reference_join_precoders(4, protected, receivers, 2)
        for index, stream in enumerate(plan.streams):
            assert np.allclose(stream.precoders, reference[:, index, :])

    def test_multiple_own_receivers(self, rng):
        protected = [ProtectedReceiver(1, 1, 1, _channels(rng, 1, 4))]
        receivers = [
            PlannedReceiver(5, 2, 1, _channels(rng, 2, 4)),
            PlannedReceiver(6, 2, 1, _channels(rng, 2, 4)),
        ]
        plan = plan_join(9, 4, protected, receivers)
        reference = _reference_join_precoders(4, protected, receivers, 2)
        for index, stream in enumerate(plan.streams):
            assert np.allclose(stream.precoders, reference[:, index, :])

    def test_no_free_dof_still_raises(self, rng):
        protected = [ProtectedReceiver(1, 3, 3, _channels(rng, 3, 3))]
        receivers = [PlannedReceiver(5, 3, 1, _channels(rng, 3, 3))]
        with pytest.raises(PrecodingError):
            plan_join(9, 3, protected, receivers)

    def test_precoders_null_at_protected_receivers(self, rng):
        channel = _channels(rng, 1, 3)
        protected = [ProtectedReceiver(1, 1, 1, channel)]
        receivers = [PlannedReceiver(5, 3, 1, _channels(rng, 3, 3))]
        plan = plan_join(9, 3, protected, receivers)
        for k in range(N_SUB):
            leak = channel[k] @ plan.streams[0].precoders[k]
            assert np.allclose(leak, 0, atol=1e-8)


class TestPlanInitialBatched:
    def test_multi_user_beamforming_matches_reference(self, rng):
        receivers = [
            PlannedReceiver(5, 2, 1, _channels(rng, 2, 3)),
            PlannedReceiver(6, 2, 2, _channels(rng, 2, 3), u_perp=_u_perp(rng, 2, 2)),
        ]
        plan = plan_initial_transmission(9, 3, receivers)
        reference = np.zeros((N_SUB, 3, 3), dtype=complex)
        for k in range(N_SUB):
            own = [
                OwnReceiver(
                    channel=r.channel[k],
                    u_perp=r.decoding_subspace(k),
                    n_streams=r.n_streams,
                )
                for r in receivers
            ]
            vectors = compute_precoders(3, ongoing=[], own_receivers=own)
            for index, vector in enumerate(vectors):
                reference[k, index] = vector
        for index, stream in enumerate(plan.streams):
            assert np.allclose(stream.precoders, reference[:, index, :])


class TestComputePrecodersBatch:
    def test_simple_case_matches_reference(self, rng):
        shared = _channels(rng, 2, 4)
        batched = compute_precoders_batch(4, shared, n_streams=2)
        for k in range(N_SUB):
            reference = compute_precoders(
                4, ongoing=[ReceiverConstraint(channel=shared[k])], n_streams=2
            )
            for index, vector in enumerate(reference):
                assert np.allclose(batched[k, index], vector)

    def test_unit_norm_precoders(self, rng):
        shared = _channels(rng, 1, 3)
        batched = compute_precoders_batch(3, shared, n_streams=2)
        norms = np.linalg.norm(batched, axis=2)
        assert np.allclose(norms, 1.0)

    def test_more_streams_than_subspace_rows_raises(self, rng):
        # OwnReceiver raises when a receiver is asked for more streams than
        # its decoding subspace has dimensions; the batch path must too
        # (instead of silently steering a stream into another receiver's
        # constraint rows).
        own_rows = _channels(rng, 2, 4)[:, :2, :]
        with pytest.raises(PrecodingError):
            compute_precoders_batch(
                4,
                np.zeros((N_SUB, 0, 4), dtype=complex),
                own_rows=own_rows,
                own_stream_counts=[2, 1],
                own_row_counts=[1, 1],
            )
