"""Link quarantine: the accounted, non-exceptional outcome of a guarded
numerical fallback during planning (see :mod:`repro.utils.guarded`)."""

from __future__ import annotations

import pytest

from repro.mac.beamforming import BeamformingMac
from repro.mac.nplus import NPlusMac
from repro.sim.medium import Medium
from repro.sim.network import Network
from repro.sim.runner import SimulationConfig, run_simulation
from repro.sim.scenarios import (
    heterogeneous_ap_scenario,
    scenario_factory,
    three_pair_scenario,
)


@pytest.fixture
def three_pair_network(rng):
    scenario = three_pair_scenario()
    network = Network(scenario.stations, scenario.pairs, rng, n_subcarriers=8)
    return scenario, network


@pytest.fixture
def heterogeneous_network(rng):
    scenario = heterogeneous_ap_scenario()
    network = Network(scenario.stations, scenario.pairs, rng, n_subcarriers=8)
    return scenario, network


class TestQuarantineMechanism:
    def test_quarantine_pins_the_link_epoch(self, three_pair_network, rng):
        scenario, network = three_pair_network
        agent = NPlusMac(scenario.pairs[0], network, rng)
        receiver_id = agent.pair.receivers[0].node_id
        assert not agent.link_quarantined(receiver_id)
        agent.quarantine_link(receiver_id)
        assert agent.link_quarantined(receiver_id)
        assert agent._quarantine_signature() == (receiver_id,)

    def test_epoch_bump_lifts_the_quarantine(self, three_pair_network, rng):
        # A quarantine lasts exactly one channel epoch: when the channel
        # changes (a fade starts or ends), the link gets a fresh chance.
        scenario, network = three_pair_network
        agent = NPlusMac(scenario.pairs[0], network, rng)
        receiver_id = agent.pair.receivers[0].node_id
        agent.quarantine_link(receiver_id)
        network.bump_link_epoch(agent.node_id, receiver_id)
        assert not agent.link_quarantined(receiver_id)
        assert agent._quarantine_signature() == ()

    def test_unrelated_epoch_bump_keeps_the_quarantine(
        self, three_pair_network, rng
    ):
        scenario, network = three_pair_network
        agent = NPlusMac(scenario.pairs[0], network, rng)
        receiver_id = agent.pair.receivers[0].node_id
        agent.quarantine_link(receiver_id)
        other = scenario.pairs[1]
        network.bump_link_epoch(
            other.transmitter.node_id, other.receivers[0].node_id
        )
        assert agent.link_quarantined(receiver_id)


class TestQuarantinedPlanning:
    def test_plan_initial_skips_a_quarantined_receiver(
        self, heterogeneous_network, rng
    ):
        scenario, network = heterogeneous_network
        agent = BeamformingMac(scenario.pairs[1], network, rng)  # two clients
        agent.refill(0.0)
        receiver_ids = [r.node_id for r in agent.pair.receivers]
        agent.quarantine_link(receiver_ids[0])
        streams = agent.plan_initial(0.0, Medium())
        assert streams
        assert {s.receiver_id for s in streams} == {receiver_ids[1]}
        assert agent.quarantined_rounds == 1

    def test_plan_initial_declines_when_every_receiver_is_quarantined(
        self, heterogeneous_network, rng
    ):
        scenario, network = heterogeneous_network
        agent = BeamformingMac(scenario.pairs[1], network, rng)
        agent.refill(0.0)
        for receiver in agent.pair.receivers:
            agent.quarantine_link(receiver.node_id)
        assert agent.plan_initial(0.0, Medium()) == []
        assert agent.plan_initial(0.0, Medium()) == []
        # one count per declined/trimmed planning call
        assert agent.quarantined_rounds == 2

    def test_quarantine_does_not_count_without_traffic(
        self, three_pair_network, rng
    ):
        scenario, network = three_pair_network
        agent = BeamformingMac(scenario.pairs[0], network, rng)
        agent.quarantine_link(agent.pair.receivers[0].node_id)
        # queues never refilled: no candidates, so nothing was suppressed
        assert agent.plan_initial(0.0, Medium()) == []
        assert agent.quarantined_rounds == 0


class TestQuarantineMetrics:
    def test_quarantined_rounds_surface_in_metrics(self):
        config = SimulationConfig(duration_us=4000.0, n_subcarriers=4)
        metrics = run_simulation(
            scenario_factory("three-pair")(), "n+", seed=3, config=config
        )
        payload = metrics.to_dict()
        for link in payload["links"].values():
            assert "quarantined_rounds" in link
            assert link["quarantined_rounds"] >= 0
