"""Tests for the protocol agents (802.11n, beamforming, n+)."""

import numpy as np
import pytest

from repro.mac.beamforming import BeamformingMac, distribute_streams
from repro.mac.dot11n import Dot11nMac
from repro.mac.nplus import NPlusMac
from repro.mimo.dof import InterferenceStrategy
from repro.sim.medium import Medium
from repro.sim.network import Network
from repro.sim.scenarios import heterogeneous_ap_scenario, three_pair_scenario


@pytest.fixture
def three_pair_network(rng):
    scenario = three_pair_scenario()
    network = Network(scenario.stations, scenario.pairs, rng, n_subcarriers=8)
    return scenario, network


@pytest.fixture
def heterogeneous_network(rng):
    scenario = heterogeneous_ap_scenario()
    network = Network(scenario.stations, scenario.pairs, rng, n_subcarriers=8)
    return scenario, network


class TestDistributeStreams:
    def test_paper_allocation(self):
        assert distribute_streams(3, [2, 2]) == [2, 1]

    def test_everyone_gets_at_least_one_when_possible(self):
        assert distribute_streams(2, [2, 2]) == [1, 1]

    def test_respects_receive_antennas(self):
        assert distribute_streams(4, [1, 1]) == [1, 1]

    def test_single_receiver(self):
        assert distribute_streams(3, [3]) == [3]


class TestDot11nMac:
    def test_plan_initial_uses_all_usable_antennas(self, three_pair_network, rng):
        scenario, network = three_pair_network
        agent = Dot11nMac(scenario.pairs[2], network, rng)
        agent.refill(0.0)
        streams = agent.plan_initial(100.0, Medium())
        assert len(streams) == 3
        assert all(s.receiver_id == 5 for s in streams)
        assert sum(s.payload_bits for s in streams) == 12000
        assert all(s.end_us > s.start_us for s in streams)

    def test_power_is_split_across_streams(self, three_pair_network, rng):
        scenario, network = three_pair_network
        agent = Dot11nMac(scenario.pairs[1], network, rng)
        agent.refill(0.0)
        streams = agent.plan_initial(0.0, Medium())
        assert streams[0].power == pytest.approx(0.5)

    def test_round_robin_over_receivers(self, heterogeneous_network, rng):
        scenario, network = heterogeneous_network
        agent = Dot11nMac(scenario.pairs[1], network, rng)  # AP2 with two clients
        agent.refill(0.0)
        first = agent.plan_initial(0.0, Medium())
        second = agent.plan_initial(0.0, Medium())
        assert first[0].receiver_id != second[0].receiver_id

    def test_no_traffic_returns_empty_plan(self, three_pair_network, rng):
        scenario, network = three_pair_network
        agent = Dot11nMac(scenario.pairs[0], network, rng)
        # Do not refill: queues are empty.
        assert agent.plan_initial(0.0, Medium()) == []

    def test_does_not_join(self, three_pair_network, rng):
        scenario, network = three_pair_network
        agent = Dot11nMac(scenario.pairs[2], network, rng)
        assert not agent.supports_joining
        assert not agent.can_join(0.0, Medium(), 100.0)


class TestBeamformingMac:
    def test_serves_both_clients_at_once(self, heterogeneous_network, rng):
        scenario, network = heterogeneous_network
        agent = BeamformingMac(scenario.pairs[1], network, rng)
        agent.refill(0.0)
        streams = agent.plan_initial(0.0, Medium())
        receivers = {s.receiver_id for s in streams}
        assert receivers == {3, 4}
        assert len(streams) == 3
        # Streams to one client are marked as protecting the other.
        for stream in streams:
            other = (receivers - {stream.receiver_id}).pop()
            assert stream.protected_receivers.get(other) is InterferenceStrategy.ALIGN

    def test_all_streams_end_together(self, heterogeneous_network, rng):
        scenario, network = heterogeneous_network
        agent = BeamformingMac(scenario.pairs[1], network, rng)
        agent.refill(0.0)
        streams = agent.plan_initial(0.0, Medium())
        assert len({s.end_us for s in streams}) == 1


class TestNPlusMac:
    def _start_tx1(self, scenario, network, rng, medium):
        tx1_agent = NPlusMac(scenario.pairs[0], network, rng)
        tx1_agent.refill(0.0)
        streams = tx1_agent.plan_initial(100.0, medium)
        medium.add_streams(streams)
        return tx1_agent, streams

    def test_eligibility_rules(self, three_pair_network, rng):
        scenario, network = three_pair_network
        medium = Medium()
        tx3_agent = NPlusMac(scenario.pairs[2], network, rng)
        tx3_agent.refill(0.0)
        # Idle medium: nothing to join.
        assert not tx3_agent.can_join(0.0, medium, 96.0)
        self._start_tx1(scenario, network, rng, medium)
        assert tx3_agent.can_join(200.0, medium, 96.0)
        # A single-antenna node can never join.
        tx1_like = NPlusMac(scenario.pairs[0], network, rng)
        assert not tx1_like.can_join(200.0, medium, 96.0)

    def test_join_protects_ongoing_receiver(self, three_pair_network, rng):
        scenario, network = three_pair_network
        medium = Medium()
        self._start_tx1(scenario, network, rng, medium)
        tx3_agent = NPlusMac(scenario.pairs[2], network, rng)
        tx3_agent.refill(0.0)
        streams = tx3_agent.plan_join(400.0, medium)
        assert streams is not None
        assert len(streams) == 2
        for stream in streams:
            assert 1 in stream.protected_receivers  # rx1 is protected
            assert stream.end_us == pytest.approx(medium.current_end_us)

    def test_join_respects_remaining_dof(self, three_pair_network, rng):
        scenario, network = three_pair_network
        medium = Medium()
        tx2_agent = NPlusMac(scenario.pairs[1], network, rng)
        tx2_agent.refill(0.0)
        medium.add_streams(tx2_agent.plan_initial(100.0, medium))
        tx3_agent = NPlusMac(scenario.pairs[2], network, rng)
        tx3_agent.refill(0.0)
        streams = tx3_agent.plan_join(400.0, medium)
        assert streams is not None
        assert len(streams) == 1  # 3 antennas - 2 ongoing streams

    def test_header_and_ack_overheads_exceed_baseline(self, three_pair_network, rng):
        scenario, network = three_pair_network
        nplus = NPlusMac(scenario.pairs[2], network, rng)
        dot11n = Dot11nMac(scenario.pairs[2], network, rng)
        assert nplus.header_duration_us() > dot11n.header_duration_us()
        assert nplus.ack_duration_us() > dot11n.ack_duration_us()

    def test_record_outcome_updates_queue_and_contention(self, three_pair_network, rng):
        scenario, network = three_pair_network
        agent = NPlusMac(scenario.pairs[0], network, rng)
        agent.refill(0.0)
        backlog_before = agent.backlog_bits(1)
        delivered = agent.record_outcome(1, 12000, delivered=True)
        assert delivered == 12000
        assert agent.backlog_bits(1) <= backlog_before
        agent.record_outcome(1, 12000, delivered=False)
        assert agent.contender.contention_window > 15
