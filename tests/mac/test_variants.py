"""Tests for the protocol-variant framework (repro.mac.variants).

The load-bearing guarantees:

* a bare protocol name and a default-parameter :class:`ProtocolSpec` are
  the *same value* -- equal, same hash, same ``key``, same ``digest`` --
  which is what keeps every pre-framework call site and cached sweep
  grid addressable;
* parameters are typed and validated at construction, so a bad spec
  fails fast with an error naming the variant's known parameters;
* the string grammar (``name[k=v,...]``) round-trips through
  :func:`parse_protocol` and the registry listing matches the CLI's
  ``protocols`` command.
"""

import pickle

import pytest

from repro.constants import DEFAULT_ERASURE_K, DEFAULT_ERASURE_N, MAX_RETRIES
from repro.exceptions import ConfigurationError
from repro.mac.variants import (
    RECOVERY_MODES,
    RECOVERY_PARAMS,
    ParamSpec,
    ProtocolSpec,
    available_variants,
    parse_protocol,
    register_variant,
    resolve_protocol,
    split_protocol_list,
    variant,
)

BUILTIN_NAMES = ("802.11n", "beamforming", "csma", "n+")


class TestRegistry:
    def test_builtins_are_registered(self):
        names = tuple(entry.name for entry in available_variants())
        # Subset, not equality: docs examples may register demo variants
        # in the same process.
        assert set(BUILTIN_NAMES) <= set(names)
        assert names == tuple(sorted(names))

    def test_variants_name_their_agent_class(self):
        for entry in available_variants():
            assert entry.agent_class.protocol_name == entry.name
            assert entry.params == RECOVERY_PARAMS

    def test_only_nplus_joins(self):
        joining = {e.name for e in available_variants() if e.supports_joining}
        assert joining == {"n+"}

    def test_unknown_variant_lists_what_exists(self):
        with pytest.raises(ConfigurationError, match="registered variants"):
            variant("aloha")

    def test_duplicate_registration_rejected(self):
        entry = variant("csma")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_variant("csma", entry.agent_class)

    def test_duplicate_param_declaration_rejected(self):
        entry = variant("csma")
        with pytest.raises(ConfigurationError, match="twice"):
            register_variant(
                "csma2", entry.agent_class, params=RECOVERY_PARAMS + RECOVERY_PARAMS
            )

    def test_unknown_param_lookup_lists_known_params(self):
        with pytest.raises(ConfigurationError, match="retry_cap"):
            variant("n+").param("window")


class TestParamSpec:
    def test_int_param_rejects_bool_and_floats(self):
        spec = ParamSpec("cap", int, 7, minimum=0)
        assert spec.validate(3) == 3
        with pytest.raises(ConfigurationError, match="got bool"):
            spec.validate(True)
        with pytest.raises(ConfigurationError, match="expects int"):
            spec.validate(3.5)

    def test_float_param_accepts_ints(self):
        spec = ParamSpec("rate", float, 1.0)
        assert spec.validate(2) == 2.0
        assert isinstance(spec.validate(2), float)

    def test_minimum_and_choices_enforced(self):
        spec = ParamSpec("cap", int, 7, minimum=0)
        with pytest.raises(ConfigurationError, match=">= 0"):
            spec.validate(-1)
        mode = ParamSpec("mode", str, "none", choices=RECOVERY_MODES)
        with pytest.raises(ConfigurationError, match="must be one of"):
            mode.validate("pigeon")

    def test_parse_coerces_cli_strings(self):
        assert ParamSpec("cap", int, 7).parse("3") == 3
        assert ParamSpec("rate", float, 1.0).parse("2.5") == 2.5
        assert ParamSpec("flag", bool, False).parse("yes") is True
        with pytest.raises(ConfigurationError, match="expects int"):
            ParamSpec("cap", int, 7).parse("three")
        with pytest.raises(ConfigurationError, match="expects a boolean"):
            ParamSpec("flag", bool, False).parse("maybe")


class TestProtocolSpecCanonicalization:
    def test_default_params_are_dropped(self):
        bare = ProtocolSpec("n+")
        explicit = ProtocolSpec(
            "n+",
            {
                "recovery": "none",
                "retry_cap": MAX_RETRIES,
                "erasure_k": DEFAULT_ERASURE_K,
                "erasure_n": DEFAULT_ERASURE_N,
            },
        )
        assert bare == explicit
        assert hash(bare) == hash(explicit)
        assert bare.key == explicit.key == "n+"
        assert bare.digest() == explicit.digest()
        assert explicit.is_default

    def test_overrides_make_a_distinct_value(self):
        spec = ProtocolSpec("n+", {"recovery": "erasure"})
        assert spec != ProtocolSpec("n+")
        assert spec.key == "n+[recovery=erasure]"
        assert spec.digest() != ProtocolSpec("n+").digest()
        assert spec.params == {"recovery": "erasure"}
        assert spec.resolved_params()["retry_cap"] == MAX_RETRIES

    def test_key_round_trips_through_parse(self):
        for spec in (
            ProtocolSpec("802.11n"),
            ProtocolSpec("n+", {"recovery": "erasure", "retry_cap": 3}),
            ProtocolSpec("csma", {"erasure_k": 2, "erasure_n": 4}),
        ):
            assert parse_protocol(spec.key) == spec
            assert str(spec) == spec.key

    def test_to_dict_resolves_and_from_dict_recanonicalizes(self):
        spec = ProtocolSpec("n+", {"retry_cap": 3})
        payload = spec.to_dict()
        assert payload["params"]["retry_cap"] == 3
        assert payload["params"]["recovery"] == "none"  # fully resolved
        assert ProtocolSpec.from_dict(payload) == spec

    def test_specs_pickle(self):
        spec = ProtocolSpec("n+", {"recovery": "fast-retransmit"})
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_validation_failures_fail_fast(self):
        with pytest.raises(ConfigurationError, match="known parameters"):
            ProtocolSpec("n+", {"window": 3})
        with pytest.raises(ConfigurationError, match="must be one of"):
            ProtocolSpec("n+", {"recovery": "pigeon"})
        with pytest.raises(ConfigurationError, match="exceeds erasure_n"):
            ProtocolSpec("n+", {"erasure_k": 9})


class TestResolveProtocol:
    def test_accepted_forms_are_interchangeable(self):
        spec = ProtocolSpec("n+", {"recovery": "erasure"})
        for form in (
            spec,
            "n+[recovery=erasure]",
            ("n+", {"recovery": "erasure"}),
            ["n+", {"recovery": "erasure"}],
            {"name": "n+", "params": {"recovery": "erasure"}},
        ):
            assert resolve_protocol(form) == spec

    def test_rejections_are_informative(self):
        with pytest.raises(ConfigurationError, match="'name' entry"):
            resolve_protocol({"params": {}})
        with pytest.raises(ConfigurationError, match="unknown entries"):
            resolve_protocol({"name": "n+", "extra": 1})
        with pytest.raises(ConfigurationError, match="must be \\(name, params\\)"):
            resolve_protocol(("n+",))
        with pytest.raises(ConfigurationError, match="cannot interpret"):
            resolve_protocol(42)


class TestStringGrammar:
    def test_malformed_specs_rejected(self):
        for text in ("n+]", "n+[recovery=erasure", "n+[recovery]", "recovery=3"):
            with pytest.raises(ConfigurationError, match="malformed"):
                parse_protocol(text)

    def test_duplicate_params_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate parameter"):
            parse_protocol("n+[retry_cap=1,retry_cap=2]")

    def test_split_respects_brackets(self):
        assert split_protocol_list("802.11n,n+[recovery=erasure,retry_cap=3]") == (
            "802.11n",
            "n+[recovery=erasure,retry_cap=3]",
        )
        assert split_protocol_list(" csma , , n+ ") == ("csma", "n+")


class TestCliListing:
    def test_protocols_command_matches_registry(self, capsys):
        from repro.cli import main

        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for entry in available_variants():
            assert entry.name in out
            for param in entry.params:
                assert param.name in out
