"""Tests for transmission planning (the join policy)."""

import numpy as np
import pytest

from repro.constants import INTERFERENCE_ADMISSION_THRESHOLD_DB
from repro.exceptions import PrecodingError
from repro.mac.plan import (
    PlannedReceiver,
    ProtectedReceiver,
    plan_initial_transmission,
    plan_join,
    receiver_decoding_subspace,
)
from repro.mimo.dof import InterferenceStrategy
from repro.utils.db import db_to_linear
from repro.utils.linalg import orthonormal_complement

N_SUB = 8


def _channels(rng, n_rx, n_tx, gain=1.0):
    shape = (N_SUB, n_rx, n_tx)
    return np.sqrt(gain / 2) * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


def _u_perp_per_subcarrier(rng, n_rx, n_keep):
    out = np.zeros((N_SUB, n_rx, n_keep), dtype=complex)
    for k in range(N_SUB):
        random = rng.standard_normal((n_rx, n_rx - n_keep)) + 1j * rng.standard_normal(
            (n_rx, n_rx - n_keep)
        )
        out[k] = orthonormal_complement(random)[:, :n_keep]
    return out


class TestReceiverDecodingSubspace:
    def test_no_interference_gives_canonical_basis(self):
        subspace = receiver_decoding_subspace(3, 2, None)
        assert subspace.shape == (3, 2)
        assert np.allclose(subspace.conj().T @ subspace, np.eye(2))

    def test_orthogonal_to_interference(self, rng):
        interference = rng.standard_normal((3, 1)) + 1j * rng.standard_normal((3, 1))
        subspace = receiver_decoding_subspace(3, 2, interference)
        assert np.allclose(interference.conj().T @ subspace, 0, atol=1e-10)

    def test_too_many_streams_raise(self, rng):
        interference = rng.standard_normal((2, 1)) + 1j * rng.standard_normal((2, 1))
        with pytest.raises(PrecodingError):
            receiver_decoding_subspace(2, 2, interference)


class TestProtectedReceiver:
    def test_strategy_selection(self, rng):
        nulled = ProtectedReceiver(1, n_antennas=1, n_wanted_streams=1, channel=_channels(rng, 1, 3))
        assert nulled.strategy is InterferenceStrategy.NULL
        assert nulled.n_constraints == 1
        aligned = ProtectedReceiver(
            2,
            n_antennas=2,
            n_wanted_streams=1,
            channel=_channels(rng, 2, 3),
            u_perp=_u_perp_per_subcarrier(rng, 2, 1),
        )
        assert aligned.strategy is InterferenceStrategy.ALIGN
        assert aligned.n_constraints == 1

    def test_requires_per_subcarrier_channel(self, rng):
        from repro.exceptions import DimensionError

        with pytest.raises(DimensionError):
            ProtectedReceiver(1, 1, 1, channel=rng.standard_normal((1, 3)))


class TestPlanInitial:
    def test_single_receiver_uses_identity_precoding(self, rng):
        receivers = [PlannedReceiver(5, n_antennas=2, n_streams=2, channel=_channels(rng, 2, 2))]
        plan = plan_initial_transmission(1, 2, receivers)
        assert plan.n_streams == 2
        assert plan.power_scale == 1.0
        for index, stream in enumerate(plan.streams):
            expected = np.zeros(2)
            expected[index] = 1.0
            assert np.allclose(stream.precoders, expected)

    def test_multi_user_beamforming_protects_other_client(self, rng):
        h_c2 = _channels(rng, 2, 3)
        h_c3 = _channels(rng, 2, 3)
        receivers = [
            PlannedReceiver(10, 2, 2, h_c2),
            PlannedReceiver(11, 2, 1, h_c3),
        ]
        plan = plan_initial_transmission(1, 3, receivers, multi_user_beamforming=True)
        assert plan.n_streams == 3
        c3_stream = plan.streams[2]
        assert c3_stream.receiver_id == 11
        # The stream destined to c3 must not appear in c2's decoding rows.
        for k in range(N_SUB):
            leak = np.eye(2).conj().T @ (h_c2[k] @ c3_stream.precoders[k])
            assert np.allclose(leak, 0, atol=1e-8)

    def test_too_many_streams_rejected(self, rng):
        receivers = [PlannedReceiver(5, 3, 3, _channels(rng, 3, 2))]
        with pytest.raises(PrecodingError):
            plan_initial_transmission(1, 2, receivers)

    def test_empty_receivers_rejected(self):
        with pytest.raises(PrecodingError):
            plan_initial_transmission(1, 2, [])

    def test_power_per_stream_splits_budget(self, rng):
        receivers = [PlannedReceiver(5, 2, 2, _channels(rng, 2, 2))]
        plan = plan_initial_transmission(1, 2, receivers)
        assert plan.power_per_stream() == pytest.approx(0.5)


class TestPlanJoin:
    def test_fig5c_join(self, rng):
        """tx3 joins the single-antenna pair: nulls at rx1, two streams to rx3."""
        protected = [ProtectedReceiver(1, 1, 1, _channels(rng, 1, 3, gain=db_to_linear(15.0)))]
        receivers = [PlannedReceiver(5, 3, 2, _channels(rng, 3, 3))]
        plan = plan_join(4, 3, protected, receivers)
        assert plan.n_streams == 2
        assert plan.protects == {1: InterferenceStrategy.NULL}
        for stream in plan.streams:
            for k in range(N_SUB):
                leak = protected[0].channel[k] @ stream.precoders[k]
                assert np.allclose(leak, 0, atol=1e-8)

    def test_fig5d_join_uses_alignment_at_rx2(self, rng):
        protected = [
            ProtectedReceiver(1, 1, 1, _channels(rng, 1, 3, gain=db_to_linear(12.0))),
            ProtectedReceiver(
                3,
                2,
                1,
                _channels(rng, 2, 3, gain=db_to_linear(12.0)),
                u_perp=_u_perp_per_subcarrier(rng, 2, 1),
            ),
        ]
        receivers = [PlannedReceiver(5, 3, 1, _channels(rng, 3, 3))]
        plan = plan_join(4, 3, protected, receivers)
        assert plan.n_streams == 1
        assert plan.protects[3] is InterferenceStrategy.ALIGN
        stream = plan.streams[0]
        for k in range(N_SUB):
            aligned_leak = (
                protected[1].u_perp[k].conj().T @ (protected[1].channel[k] @ stream.precoders[k])
            )
            assert np.allclose(aligned_leak, 0, atol=1e-8)

    def test_join_requesting_too_many_streams_fails(self, rng):
        protected = [ProtectedReceiver(1, 2, 2, _channels(rng, 2, 3))]
        receivers = [PlannedReceiver(5, 3, 2, _channels(rng, 3, 3))]
        with pytest.raises(PrecodingError):
            plan_join(4, 3, protected, receivers)

    def test_power_control_engages_for_loud_joiners(self, rng):
        loud_gain = db_to_linear(INTERFERENCE_ADMISSION_THRESHOLD_DB + 8.0)
        protected = [ProtectedReceiver(1, 1, 1, _channels(rng, 1, 3, gain=loud_gain))]
        receivers = [PlannedReceiver(5, 3, 2, _channels(rng, 3, 3))]
        plan = plan_join(4, 3, protected, receivers)
        assert plan.power_scale < 1.0

    def test_quiet_joiner_keeps_full_power(self, rng):
        quiet_gain = db_to_linear(10.0)
        protected = [ProtectedReceiver(1, 1, 1, _channels(rng, 1, 3, gain=quiet_gain))]
        receivers = [PlannedReceiver(5, 3, 2, _channels(rng, 3, 3))]
        assert plan_join(4, 3, protected, receivers).power_scale == 1.0

    def test_fig4_join_with_two_own_receivers(self, rng):
        protected = [
            ProtectedReceiver(
                1,
                2,
                1,
                _channels(rng, 2, 3, gain=db_to_linear(12.0)),
                u_perp=_u_perp_per_subcarrier(rng, 2, 1),
            )
        ]
        receivers = [
            PlannedReceiver(3, 2, 1, _channels(rng, 2, 3), u_perp=_u_perp_per_subcarrier(rng, 2, 1)),
            PlannedReceiver(4, 2, 1, _channels(rng, 2, 3), u_perp=_u_perp_per_subcarrier(rng, 2, 1)),
        ]
        plan = plan_join(2, 3, protected, receivers)
        assert plan.n_streams == 2
        assert {s.receiver_id for s in plan.streams} == {3, 4}

    def test_join_without_receivers_rejected(self, rng):
        protected = [ProtectedReceiver(1, 1, 1, _channels(rng, 1, 3))]
        with pytest.raises(PrecodingError):
            plan_join(4, 3, protected, [])

    def test_inconsistent_subcarrier_counts_rejected(self, rng):
        from repro.exceptions import DimensionError

        protected = [ProtectedReceiver(1, 1, 1, _channels(rng, 1, 3))]
        bad = rng.standard_normal((4, 3, 3)) + 1j * rng.standard_normal((4, 3, 3))
        receivers = [PlannedReceiver(5, 3, 1, bad)]
        with pytest.raises(DimensionError):
            plan_join(4, 3, protected, receivers)
