"""Tests for DCF contention and the retransmission queue."""

import numpy as np
import pytest

from repro.constants import CW_MAX, CW_MIN, DIFS_US, SLOT_TIME_US
from repro.mac.csma import ContentionRound, DcfContender, resolve_contention
from repro.mac.frames import Packet
from repro.mac.retransmission import RetransmissionQueue


class TestDcfContender:
    def test_backoff_within_window(self, rng):
        contender = DcfContender(node_id=1)
        draws = [contender.draw_backoff(rng) for _ in range(200)]
        assert min(draws) >= 0
        assert max(draws) <= CW_MIN

    def test_collision_doubles_window(self):
        contender = DcfContender(node_id=1)
        contender.record_collision()
        assert contender.contention_window == 2 * (CW_MIN + 1) - 1
        contender.record_collision()
        assert contender.contention_window == 4 * (CW_MIN + 1) - 1

    def test_window_caps_at_cw_max(self):
        contender = DcfContender(node_id=1)
        for _ in range(20):
            contender.record_collision()
        assert contender.contention_window == CW_MAX

    def test_success_resets_window(self):
        contender = DcfContender(node_id=1)
        contender.record_collision()
        contender.record_success()
        assert contender.contention_window == CW_MIN


class TestResolveContention:
    def test_single_contender_always_wins(self, rng):
        outcome = resolve_contention([DcfContender(7)], rng)
        assert outcome.winners == (7,)
        assert not outcome.collision
        assert outcome.start_delay_us >= DIFS_US

    def test_empty_contender_list(self, rng):
        outcome = resolve_contention([], rng)
        assert outcome.winners == ()
        assert not outcome.collision

    def test_winner_has_smallest_backoff(self, rng):
        contenders = [DcfContender(i) for i in range(3)]
        outcome = resolve_contention(contenders, rng)
        assert len(outcome.winners) >= 1
        assert outcome.start_delay_us == DIFS_US + outcome.backoff_slots * SLOT_TIME_US

    def test_collisions_occur_at_realistic_rate(self, rng):
        """With 3 saturated nodes and CW=15, collisions happen but are not
        the common case."""
        collisions = 0
        rounds = 2000
        for _ in range(rounds):
            outcome = resolve_contention([DcfContender(i) for i in range(3)], rng)
            collisions += outcome.collision
        rate = collisions / rounds
        assert 0.03 < rate < 0.30

    def test_every_node_wins_roughly_equally(self, rng):
        wins = {0: 0, 1: 0, 2: 0}
        for _ in range(3000):
            outcome = resolve_contention([DcfContender(i) for i in range(3)], rng)
            if not outcome.collision:
                wins[outcome.winners[0]] += 1
        values = list(wins.values())
        assert max(values) - min(values) < 0.2 * sum(values)

    def test_outcome_is_independent_of_contender_order(self, rng_factory):
        """The same seeded round yields the same winners no matter how the
        caller happened to order the contender list (backoffs are drawn in
        canonical node-id order)."""
        for trial in range(50):
            contenders = [DcfContender(node_id) for node_id in (5, 1, 9, 3, 7)]
            forward = resolve_contention(contenders, rng_factory(trial))
            backward = resolve_contention(list(reversed(contenders)), rng_factory(trial))
            assert forward == backward

    def test_backoffs_respect_per_node_windows(self, rng):
        """The single array draw must honour each contender's own window."""
        wide = DcfContender(1)
        for _ in range(4):
            wide.record_collision()
        narrow = DcfContender(2)
        for _ in range(500):
            outcome = resolve_contention([wide, narrow], rng)
            assert 0 <= outcome.backoff_slots <= narrow.contention_window


class TestRetransmissionQueue:
    def test_enqueue_and_backlog(self):
        queue = RetransmissionQueue()
        queue.enqueue(Packet(0, 1, size_bytes=1500))
        assert queue.has_traffic
        assert queue.backlog_bits == 12000
        assert len(queue) == 1

    def test_acknowledge_whole_packet(self):
        queue = RetransmissionQueue()
        queue.enqueue(Packet(0, 1, size_bytes=1500))
        completed = queue.acknowledge(12000)
        assert completed == 1
        assert not queue.has_traffic
        assert queue.delivered_bits == 12000

    def test_partial_acknowledgement_keeps_packet(self):
        queue = RetransmissionQueue()
        queue.enqueue(Packet(0, 1, size_bytes=1500))
        completed = queue.acknowledge(5000)
        assert completed == 0
        assert queue.backlog_bits == 7000
        assert queue.has_traffic

    def test_acknowledge_spans_packets(self):
        queue = RetransmissionQueue()
        queue.enqueue(Packet(0, 1, size_bytes=1500, packet_id=0))
        queue.enqueue(Packet(0, 1, size_bytes=1500, packet_id=1))
        completed = queue.acknowledge(18000)
        assert completed == 1
        assert queue.backlog_bits == 6000

    def test_take_bits_is_limited_by_backlog(self):
        queue = RetransmissionQueue()
        queue.enqueue(Packet(0, 1, size_bytes=100))
        assert queue.take_bits(10_000) == 800

    def test_fail_increments_retries_and_drops_eventually(self):
        queue = RetransmissionQueue(max_retries=2)
        queue.enqueue(Packet(0, 1))
        queue.fail()
        queue.fail()
        assert queue.has_traffic
        queue.fail()
        assert not queue.has_traffic
        assert queue.dropped_packets == 1

    def test_fail_on_empty_queue_is_noop(self):
        RetransmissionQueue().fail()

    def test_head_returns_oldest_packet(self):
        queue = RetransmissionQueue()
        queue.enqueue(Packet(0, 1, packet_id=10))
        queue.enqueue(Packet(0, 1, packet_id=11))
        assert queue.head().packet_id == 10


class TestPartialDeliveryBoundary:
    """Retry accounting at the partial-delivery boundary.

    An aggregated attempt spans several packets; a failure must age every
    packet it carried (not just the head), and forward progress on the
    head must reset its retry count -- otherwise a slow-but-working link
    drops packets at the cap, and a dead link never drops the tail.
    """

    def test_fail_ages_every_packet_the_attempt_spanned(self):
        queue = RetransmissionQueue(max_retries=2)
        first = Packet(0, 1, size_bytes=1500, packet_id=0)
        second = Packet(0, 1, size_bytes=1500, packet_id=1)
        third = Packet(0, 1, size_bytes=1500, packet_id=2)
        for packet in (first, second, third):
            queue.enqueue(packet)
        # an aggregated attempt carrying the first two packets fails
        queue.fail(attempted_bits=24_000)
        assert first.retries == 1
        assert second.retries == 1
        assert third.retries == 0  # not part of the attempt

    def test_fail_with_partial_span_rounds_up_to_the_head(self):
        queue = RetransmissionQueue()
        head = Packet(0, 1, size_bytes=1500, packet_id=0)
        tail = Packet(0, 1, size_bytes=1500, packet_id=1)
        queue.enqueue(head)
        queue.enqueue(tail)
        # a fragment smaller than the head still ages (only) the head
        queue.fail(attempted_bits=4_000)
        assert head.retries == 1
        assert tail.retries == 0

    def test_legacy_fail_ages_only_the_head(self):
        queue = RetransmissionQueue()
        head = Packet(0, 1, size_bytes=1500, packet_id=0)
        tail = Packet(0, 1, size_bytes=1500, packet_id=1)
        queue.enqueue(head)
        queue.enqueue(tail)
        queue.fail()
        assert head.retries == 1
        assert tail.retries == 0

    def test_partial_progress_resets_the_head_retry_count(self):
        queue = RetransmissionQueue(max_retries=2)
        packet = Packet(0, 1, size_bytes=1500)
        queue.enqueue(packet)
        queue.fail(attempted_bits=12_000)
        queue.fail(attempted_bits=12_000)
        assert packet.retries == 2
        # forward progress: part of the packet gets through
        queue.acknowledge(4_000)
        assert packet.retries == 0
        # the cap now counts from the last progress, not from enqueue
        queue.fail(attempted_bits=8_000)
        queue.fail(attempted_bits=8_000)
        assert queue.has_traffic
        assert queue.dropped_packets == 0

    def test_drops_count_remaining_bits_not_original_size(self):
        queue = RetransmissionQueue(max_retries=0)
        packet = Packet(0, 1, size_bytes=1500)
        queue.enqueue(packet)
        queue.acknowledge(2_000)  # 10k bits left (and retries reset)
        queue.fail(attempted_bits=10_000)
        assert not queue.has_traffic
        assert queue.dropped_packets == 1
        assert queue.dropped_bits == 10_000

    def test_aggregated_fail_drops_every_capped_packet(self):
        queue = RetransmissionQueue(max_retries=0)
        for packet_id in range(3):
            queue.enqueue(Packet(0, 1, size_bytes=1500, packet_id=packet_id))
        queue.fail(attempted_bits=36_000)
        assert not queue.has_traffic
        assert queue.dropped_packets == 3
        assert queue.dropped_bits == 36_000

    def test_dropped_packets_survive_into_network_metrics(self):
        """The drop counter flows through to LinkMetrics."""
        from repro.sim.metrics import LinkMetrics

        metrics = LinkMetrics(pair_name="tx1->rx1", packets_dropped=3)
        assert LinkMetrics.from_dict(metrics.to_dict()).packets_dropped == 3
        # entries cached before the counter existed still load
        legacy = metrics.to_dict()
        legacy.pop("packets_dropped")
        assert LinkMetrics.from_dict(legacy).packets_dropped == 0
