"""Smoke tests: every example script runs headless and exits cleanly.

Each example carries its own assertions about the paper's claims; this
suite executes them as subprocesses with ``REPRO_QUICK=1`` (which the
examples honour by shrinking trial counts and simulated durations) so a
broken public API or a silently failing walkthrough fails the tier-1
suite instead of the next reader.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """New examples must be picked up by the glob (guards renames)."""
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "bursty_traffic.py",
        "carrier_sense_demo.py",
        "heterogeneous_lan.py",
        "join_ongoing_transmissions.py",
    } <= names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_headless(example):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_QUICK"] = "1"
    result = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example.name} failed with exit code {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"
