"""Benchmark E5/E9 -- Fig. 12 and the §6.3 headline numbers: throughput of
n+ vs 802.11n in the three-pair scenario.

Paper's reported shape: the total network throughput roughly doubles, the
2-antenna pair gains ~1.5x, the 3-antenna pair gains ~3.5x, and the
single-antenna pair loses only a few percent.
"""

from __future__ import annotations

from reporting import print_block

from repro.experiments.fig12_throughput import run_throughput_experiment, summarize
from repro.sim.runner import SimulationConfig


def bench_fig12_throughput(benchmark):
    config = SimulationConfig(duration_us=100_000.0, n_subcarriers=12)
    experiment = benchmark.pedantic(
        run_throughput_experiment,
        kwargs={"n_runs": 12, "seed": 0, "config": config},
        rounds=1,
        iterations=1,
    )
    print_block("Fig. 12 -- throughput, n+ vs 802.11n (three-pair scenario)", summarize(experiment))

    # Shape assertions: who wins and roughly by how much.
    assert experiment.total_gain() > 1.3, "n+ should clearly beat 802.11n in total throughput"
    assert experiment.pair_gain("tx3->rx3") > 1.8, "the 3-antenna pair should gain the most"
    assert experiment.pair_gain("tx3->rx3") > experiment.pair_gain("tx2->rx2")
    assert experiment.pair_gain("tx1->rx1") > 0.6, "the single-antenna pair should lose only a little"
