"""Ablation -- why alignment is needed on top of nulling (§2, Eq. 2 vs Eq. 4).

The paper argues that a third transmitter cannot join two ongoing
transmissions with interference nulling alone: nulling at three receive
antennas consumes all three of its antennas.  This ablation quantifies the
claim across random channels: with nulling-only the joiner gets zero
streams (and therefore zero throughput); with nulling + alignment it gets
one stream whose post-projection SNR supports a useful bitrate.
"""

from __future__ import annotations

import numpy as np
from reporting import print_block

from repro.channel.models import complex_gaussian
from repro.exceptions import PrecodingError
from repro.mimo.decoder import post_projection_snr_db
from repro.mimo.nulling import nulling_precoders
from repro.mimo.precoder import ReceiverConstraint, compute_precoders
from repro.phy.esnr import select_mcs
from repro.utils.db import db_to_linear
from repro.utils.linalg import orthonormal_complement


def _third_joiner_comparison(n_trials: int = 300, seed: int = 0):
    """For each random channel draw, how many streams (and what bitrate)
    does the third transmitter get with nulling-only vs nulling+alignment?"""
    rng = np.random.default_rng(seed)
    nulling_only_streams = []
    combined_streams = []
    combined_rates_mbps = []
    for _ in range(n_trials):
        gain = db_to_linear(rng.uniform(10.0, 25.0))
        h_rx1 = complex_gaussian((1, 3), rng, gain)
        h_rx2 = complex_gaussian((2, 3), rng, gain)
        h_rx3 = complex_gaussian((3, 3), rng, gain)
        interference_at_rx2 = complex_gaussian((2, 1), rng, gain)

        # Nulling-only: must null at rx1 (1 antenna) and rx2 (2 antennas).
        try:
            precoders = nulling_precoders([h_rx1, h_rx2], 3)
            nulling_only_streams.append(precoders.shape[1])
        except PrecodingError:
            nulling_only_streams.append(0)

        # Nulling at rx1 + alignment at rx2.
        u_perp = orthonormal_complement(interference_at_rx2)[:, :1]
        try:
            vectors = compute_precoders(
                3,
                [
                    ReceiverConstraint(channel=h_rx1),
                    ReceiverConstraint(channel=h_rx2, u_perp=u_perp),
                ],
            )
        except PrecodingError:
            combined_streams.append(0)
            continue
        combined_streams.append(len(vectors))
        # The joiner's receiver projects out the two ongoing streams.
        ongoing_at_rx3 = complex_gaussian((3, 2), rng, gain)
        snr = post_projection_snr_db(
            (h_rx3 @ vectors[0]).reshape(3, 1), ongoing_at_rx3, noise_power=1.0
        )
        mcs = select_mcs(list(snr) * 8)
        combined_rates_mbps.append(mcs.data_rate_mbps())
    return nulling_only_streams, combined_streams, combined_rates_mbps


def bench_ablation_nulling_only_vs_alignment(benchmark):
    nulling_only, combined, rates = benchmark.pedantic(
        _third_joiner_comparison, kwargs={"n_trials": 300, "seed": 0}, rounds=1, iterations=1
    )
    body = "\n".join(
        [
            f"third transmitter streams, nulling only   : mean {np.mean(nulling_only):.2f}",
            f"third transmitter streams, null + align   : mean {np.mean(combined):.2f}",
            f"third transmitter bitrate with alignment  : mean {np.mean(rates):.1f} Mb/s",
        ]
    )
    print_block("Ablation -- nulling-only vs nulling + alignment for the third joiner", body)
    assert np.mean(nulling_only) == 0.0
    assert np.mean(combined) == 1.0
    assert np.mean(rates) > 3.0
