#!/usr/bin/env python
"""Perf-regression harness for the core-primitive benchmarks.

Runs the tracked ``pytest-benchmark`` suite and maintains a committed
baseline (``BENCH_core.json`` at the repository root) so hot-path
regressions are caught mechanically:

    python benchmarks/run_all.py             # run suite, (re)write BENCH_core.json
    python benchmarks/run_all.py --compare   # run suite, fail on >25% regressions
    python benchmarks/run_all.py --compare --threshold 0.5

``--compare`` exits non-zero if any tracked benchmark's mean runtime
regresses more than ``--threshold`` (default 0.25, i.e. 25%) against the
committed baseline.  New benchmarks that have no baseline entry are
reported but do not fail the comparison; refresh the baseline to start
tracking them.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_core.json"

#: Benchmark files whose timings are tracked against the baseline.  The
#: figure-reproduction benchmarks are excluded: they are experiment
#: re-runs, not per-packet hot paths.
TRACKED_FILES = [
    "benchmarks/bench_core_primitives.py",
    "benchmarks/bench_dense_rounds.py",
    "benchmarks/bench_build_network.py",
]


def run_suite() -> dict:
    """Run the tracked benchmarks and return ``{name: mean_seconds}``."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            *TRACKED_FILES,
            "-o",
            "python_files=bench_*.py",
            "-o",
            "python_functions=bench_*",
            "--benchmark-only",
            "-p",
            "no:cacheprovider",
            "-q",
            f"--benchmark-json={json_path}",
        ]
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if result.returncode != 0:
            raise SystemExit(f"benchmark run failed with exit code {result.returncode}")
        payload = json.loads(json_path.read_text())
    means = {}
    for bench in payload["benchmarks"]:
        means[bench["name"]] = bench["stats"]["mean"]
    if not means:
        raise SystemExit("benchmark run produced no timings")
    return means


def write_baseline(means: dict) -> None:
    baseline = {
        "note": (
            "Mean runtimes (seconds) of the tracked core-primitive benchmarks. "
            "Regenerate with: python benchmarks/run_all.py"
        ),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "benchmarks": {name: {"mean_s": mean} for name, mean in sorted(means.items())},
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote baseline with {len(means)} benchmarks to {BASELINE_PATH}")


def compare(means: dict, threshold: float) -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run without --compare to create one")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())["benchmarks"]

    regressions = []
    width = max(len(name) for name in means)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  {'ratio':>7}")
    for name, mean in sorted(means.items()):
        entry = baseline.get(name)
        if entry is None:
            print(f"{name.ljust(width)}  {'--':>12}  {mean * 1e3:>10.3f}ms  {'new':>7}")
            continue
        base = entry["mean_s"]
        ratio = mean / base if base > 0 else float("inf")
        flag = "  REGRESSED" if ratio > 1.0 + threshold else ""
        print(
            f"{name.ljust(width)}  {base * 1e3:>10.3f}ms  {mean * 1e3:>10.3f}ms  "
            f"{ratio:>6.2f}x{flag}"
        )
        if ratio > 1.0 + threshold:
            regressions.append((name, ratio))
    missing = sorted(set(baseline) - set(means))
    for name in missing:
        print(f"{name.ljust(width)}  present in baseline but not run")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{threshold:.0%} against {BASELINE_PATH.name}"
        )
        return 1
    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) were not run")
        return 1
    print(f"\nall {len(means)} tracked benchmarks within {threshold:.0%} of the baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated mean-runtime regression (default: 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    means = run_suite()
    if args.compare:
        return compare(means, args.threshold)
    write_baseline(means)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
