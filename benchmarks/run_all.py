#!/usr/bin/env python
"""Perf-regression harness for the core-primitive benchmarks.

Runs the tracked ``pytest-benchmark`` suite plus the construction-memory
measurements and maintains a committed baseline (``BENCH_core.json`` at
the repository root) so hot-path regressions -- runtime *and* memory --
are caught mechanically:

    python benchmarks/run_all.py             # run suite, (re)write BENCH_core.json
    python benchmarks/run_all.py --compare   # run suite, fail on >25% regressions
    python benchmarks/run_all.py --compare --quick   # the CI-affordable gate
    python benchmarks/run_all.py --compare --threshold 0.5

``--compare`` exits non-zero if any tracked benchmark's mean runtime (or
``mem_*`` entry's peak bytes) regresses more than ``--threshold``
(default 0.25, i.e. 25%) against the committed baseline.  New benchmarks
that have no baseline entry are reported but do not fail the comparison;
refresh the baseline to start tracking them.

``--quick`` skips the expensive entries -- the 500-station tier, the
kept reference/comparison implementations -- so the gate fits in a CI
minute; baseline entries that were deliberately not run are reported but
do not fail a quick comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_core.json"

#: Benchmark files whose timings are tracked against the baseline.  The
#: figure-reproduction benchmarks are excluded: they are experiment
#: re-runs, not per-packet hot paths.  ``bench_sweep_scaling`` tracks
#: only its warm cache-replay pair (store vs legacy JSON cache); its
#: scaling script remains untracked.
TRACKED_FILES = [
    "benchmarks/bench_core_primitives.py",
    "benchmarks/bench_dense_rounds.py",
    "benchmarks/bench_build_network.py",
    "benchmarks/bench_faults.py",
    "benchmarks/bench_fidelity.py",
    "benchmarks/bench_recovery.py",
    "benchmarks/bench_sweep_scaling.py",
]

#: Entries skipped by ``--quick``: the 500-station tier and the kept
#: reference/comparison implementations.  Each has a faster tracked
#: sibling, so quick mode still covers every hot path once.
QUICK_DESELECT = [
    "bench_build_network_500",
    "bench_build_network_100_reference",
    "bench_build_network_200_batched",
    "bench_nplus_rounds_no_plan_cache",
    "bench_dense_lan_100_rounds_per_agent",
    "bench_dense_lan_100_bursty_rounds_per_agent",
]

#: Station counts measured by the memory benchmark (``--quick`` drops 500).
MEMORY_SIZES = (100, 200, 500)
QUICK_MEMORY_SIZES = (100, 200)


def _env_with_src() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def run_suite(quick: bool = False) -> dict:
    """Run the tracked benchmarks; return ``{name: {"mean_s": seconds}}``."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            *TRACKED_FILES,
            "-o",
            "python_files=bench_*.py",
            "-o",
            "python_functions=bench_*",
            "--benchmark-only",
            "-p",
            "no:cacheprovider",
            "-q",
            f"--benchmark-json={json_path}",
        ]
        if quick:
            command += ["-k", " and ".join(f"not {name}" for name in QUICK_DESELECT)]
        result = subprocess.run(command, cwd=REPO_ROOT, env=_env_with_src())
        if result.returncode != 0:
            raise SystemExit(f"benchmark run failed with exit code {result.returncode}")
        payload = json.loads(json_path.read_text())
    entries = {}
    for bench in payload["benchmarks"]:
        entries[bench["name"]] = {"mean_s": bench["stats"]["mean"]}
    if not entries:
        raise SystemExit("benchmark run produced no timings")
    return entries


def run_memory(quick: bool = False) -> dict:
    """Run the construction-memory measurements in a fresh interpreter.

    Returns ``{mem_build_network_<n>: {"peak_bytes": bytes}}``.  A
    subprocess keeps tracemalloc's accounting clean of this harness.
    """
    sizes = QUICK_MEMORY_SIZES if quick else MEMORY_SIZES
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "memory.json"
        command = [
            sys.executable,
            "benchmarks/bench_network_memory.py",
            "--sizes",
            ",".join(str(size) for size in sizes),
            "--json",
            str(json_path),
        ]
        result = subprocess.run(command, cwd=REPO_ROOT, env=_env_with_src())
        if result.returncode != 0:
            raise SystemExit(f"memory benchmark failed with exit code {result.returncode}")
        payload = json.loads(json_path.read_text())
    return {name: {"peak_bytes": entry["peak_bytes"]} for name, entry in payload.items()}


def _metric(entry: dict):
    """``(value, formatted)`` of a baseline/run entry, either metric."""
    if "mean_s" in entry:
        return entry["mean_s"], f"{entry['mean_s'] * 1e3:>10.3f}ms"
    return entry["peak_bytes"], f"{entry['peak_bytes'] / 1e6:>10.1f}MB"


def write_baseline(entries: dict) -> None:
    baseline = {
        "note": (
            "Mean runtimes (seconds) and construction peaks (bytes) of the "
            "tracked benchmarks. Regenerate with: python benchmarks/run_all.py"
        ),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "benchmarks": {name: entry for name, entry in sorted(entries.items())},
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote baseline with {len(entries)} benchmarks to {BASELINE_PATH}")


def _expected_quick_skips() -> set:
    """Baseline entries ``--quick`` deliberately does not run."""
    skipped_sizes = set(MEMORY_SIZES) - set(QUICK_MEMORY_SIZES)
    return set(QUICK_DESELECT) | {f"mem_build_network_{size}" for size in skipped_sizes}


def compare(entries: dict, threshold: float, expected_missing: set = frozenset()) -> int:
    """Compare run entries to the baseline; non-zero on any regression.

    ``expected_missing`` names the baseline entries that were
    deliberately not run (quick mode's skip set).  Any *other* missing
    entry still fails -- a renamed or non-collecting benchmark must not
    silently drop out of the gate.
    """
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run without --compare to create one")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())["benchmarks"]

    regressions = []
    width = max(len(name) for name in entries)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  {'ratio':>7}")
    for name, entry in sorted(entries.items()):
        value, formatted = _metric(entry)
        base_entry = baseline.get(name)
        if base_entry is None:
            print(f"{name.ljust(width)}  {'--':>12}  {formatted}  {'new':>7}")
            continue
        base, base_formatted = _metric(base_entry)
        ratio = value / base if base > 0 else float("inf")
        flag = "  REGRESSED" if ratio > 1.0 + threshold else ""
        print(f"{name.ljust(width)}  {base_formatted}  {formatted}  {ratio:>6.2f}x{flag}")
        if ratio > 1.0 + threshold:
            regressions.append((name, ratio))
    missing = sorted(set(baseline) - set(entries))
    unexpected_missing = [name for name in missing if name not in expected_missing]
    for name in missing:
        note = (
            "skipped (--quick)"
            if name in expected_missing
            else "present in baseline but not run"
        )
        print(f"{name.ljust(width)}  {note}")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{threshold:.0%} against {BASELINE_PATH.name}"
        )
        return 1
    if unexpected_missing:
        print(f"\n{len(unexpected_missing)} baseline benchmark(s) were not run")
        return 1
    print(f"\nall {len(entries)} tracked benchmarks within {threshold:.0%} of the baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated mean-runtime regression (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the expensive entries (500-station tier, kept references) "
        "for a CI-affordable gate; skipped baseline entries do not fail",
    )
    args = parser.parse_args(argv)
    if args.quick and not args.compare:
        parser.error("--quick is a comparison mode; baselines need the full suite")

    entries = run_suite(quick=args.quick)
    entries.update(run_memory(quick=args.quick))
    if args.compare:
        expected = _expected_quick_skips() if args.quick else frozenset()
        return compare(entries, args.threshold, expected_missing=expected)
    write_baseline(entries)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
