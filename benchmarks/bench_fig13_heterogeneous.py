"""Benchmark E6/E7 -- Fig. 13: heterogeneous transmit/receive antenna
counts, n+ vs 802.11n and vs multi-user beamforming.

Paper's reported shape: n+ improves the total network throughput by ~2.4x
over 802.11n and ~1.8x over beamforming; the AP's downlink flows gain
~3.5x while the single-antenna uplink client loses only slightly.
"""

from __future__ import annotations

from reporting import print_block

from repro.experiments.fig13_heterogeneous import run_heterogeneous_experiment, summarize
from repro.sim.runner import SimulationConfig


def bench_fig13_heterogeneous(benchmark):
    config = SimulationConfig(duration_us=100_000.0, n_subcarriers=12)
    experiment = benchmark.pedantic(
        run_heterogeneous_experiment,
        kwargs={"n_runs": 12, "seed": 0, "config": config},
        rounds=1,
        iterations=1,
    )
    print_block(
        "Fig. 13 -- heterogeneous scenario, n+ vs 802.11n and beamforming", summarize(experiment)
    )

    # Shape assertions: ordering of the three protocols and who gains.
    assert experiment.mean_gain_over("802.11n") > 1.2
    assert experiment.mean_gain_over("beamforming") > 1.0
    assert experiment.mean_gain_over("802.11n", "AP2->c2+c3") > 1.5
    assert experiment.mean_gain_over("802.11n", "c1->AP1") > 0.5
