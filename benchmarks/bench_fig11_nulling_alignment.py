"""Benchmark E3/E4 -- Fig. 11: residual SNR loss after nulling and
alignment.

Paper's reported shape: the loss grows with the unwanted signal's original
SNR, stays within roughly 0.5-3 dB over the admitted range, nulling loses
slightly less than alignment, and the averages below the L = 27 dB
admission threshold are about 0.8 dB (nulling) and 1.3 dB (alignment).
"""

from __future__ import annotations

from reporting import print_block

from repro.experiments.fig11_nulling_alignment import (
    run_alignment_experiment,
    run_nulling_experiment,
    summarize,
)


def bench_fig11_nulling(benchmark):
    result = benchmark.pedantic(
        run_nulling_experiment, kwargs={"n_trials": 1500, "seed": 0}, rounds=1, iterations=1
    )
    print_block("Fig. 11(a) -- SNR reduction due to nulling", summarize(result))
    assert -2.0 < result.average_reduction_below_threshold_db < 0.0
    low_bin = [v for (u, _), vs in result.reductions_db.items() if u == 0 for v in vs]
    high_bin = [v for (u, _), vs in result.reductions_db.items() if u == 4 for v in vs]
    assert sum(high_bin) / len(high_bin) < sum(low_bin) / len(low_bin)


def bench_fig11_alignment(benchmark):
    result = benchmark.pedantic(
        run_alignment_experiment, kwargs={"n_trials": 1500, "seed": 1}, rounds=1, iterations=1
    )
    print_block("Fig. 11(b) -- SNR reduction due to alignment", summarize(result))
    assert -2.5 < result.average_reduction_below_threshold_db < 0.0


def bench_fig11_nulling_vs_alignment(benchmark):
    def both():
        nulling = run_nulling_experiment(n_trials=800, seed=2)
        alignment = run_alignment_experiment(n_trials=800, seed=3)
        return nulling, alignment

    nulling, alignment = benchmark.pedantic(both, rounds=1, iterations=1)
    body = (
        f"average loss below threshold: nulling = "
        f"{nulling.average_reduction_below_threshold_db:.2f} dB, alignment = "
        f"{alignment.average_reduction_below_threshold_db:.2f} dB\n"
        "(paper: 0.8 dB and 1.3 dB)"
    )
    print_block("Fig. 11 -- nulling vs alignment", body)
    assert (
        alignment.average_reduction_below_threshold_db
        <= nulling.average_reduction_below_threshold_db + 0.1
    )
