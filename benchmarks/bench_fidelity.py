"""Two-fidelity PHY benchmarks: auto-tier rounds and the probe kernel.

``bench_fidelity_auto_rounds`` times a full ``fidelity="auto"``
simulation (``dense-lan-20-bursty``): margin classification on every
attempted group plus the memoised full-PHY escalations for in-band
links.  ``bench_fidelity_abstraction_overhead`` times the *same*
scenario and network under the default abstraction tier -- the pair
bounds what the fidelity layer costs when armed and documents that the
abstraction path carries none of it.  ``bench_full_phy_probe`` isolates
one un-memoised probe (encode -> channel -> decode at 1024 bits), the
unit of work every escalation cache miss pays.

Tracked in ``BENCH_core.json``; run ``python benchmarks/run_all.py
--compare`` to gate regressions.
"""

from __future__ import annotations

import numpy as np

from repro.phy.rates import MCS_TABLE
from repro.sim.fidelity import phy_stream_rng, simulate_probe_delivery
from repro.sim.runner import SimulationConfig, build_network, run_simulation
from repro.sim.scenarios import scenario_factory

_AUTO_CONFIG = SimulationConfig(
    duration_us=30_000.0, n_subcarriers=8, fidelity="auto"
)
_ABSTRACTION_CONFIG = SimulationConfig(duration_us=30_000.0, n_subcarriers=8)
_SEED = 7

_state: dict = {}


def _setup():
    """Build (once) the bursty scenario and its network."""
    if not _state:
        scenario = scenario_factory("dense-lan-20-bursty")()
        network = build_network(scenario, _SEED, _AUTO_CONFIG)
        _state["pair"] = (scenario, network)
    return _state["pair"]


def bench_fidelity_auto_rounds(benchmark):
    """Auto-tier rounds on a bursty 20-station LAN, 30 ms window."""
    scenario, network = _setup()
    metrics = benchmark(
        lambda: run_simulation(
            scenario, "n+", seed=_SEED, config=_AUTO_CONFIG, network=network
        )
    )
    assert metrics.elapsed_us > 0
    assert metrics.total_throughput_mbps() > 0.0


def bench_fidelity_abstraction_overhead(benchmark):
    """The same scenario under the abstraction tier: the no-op baseline."""
    scenario, network = _setup()
    metrics = benchmark(
        lambda: run_simulation(
            scenario, "n+", seed=_SEED, config=_ABSTRACTION_CONFIG, network=network
        )
    )
    assert metrics.elapsed_us > 0


def bench_full_phy_probe(benchmark):
    """One 1024-bit probe at the delivery cliff: the escalation unit cost.

    Pins the channel 1 dB above the logistic centre of MCS 3 so the
    probe exercises a realistic (noisy, mostly-delivering) operating
    point rather than a saturated shortcut.
    """
    mcs = MCS_TABLE[3]
    snrs = np.full(8, mcs.min_esnr_db - 1.5)
    rng = phy_stream_rng(_SEED, 1, 2)

    benchmark(lambda: simulate_probe_delivery(snrs, mcs, rng))
