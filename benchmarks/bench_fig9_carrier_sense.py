"""Benchmark E1/E2 -- Fig. 9: carrier sense in the presence of ongoing
transmissions.

Paper's reported shape:

* Fig. 9(a): without projection the arrival of tx2 barely moves the
  received power (~0.4 dB); with projection it jumps by ~8.5 dB.
* Fig. 9(b): without projection ~18 % of the correlation values measured
  while tx2 transmits are indistinguishable from the silent case; with
  projection the distributions separate almost completely.
"""

from __future__ import annotations

from reporting import print_block

from repro.experiments.fig9_carrier_sense import run_carrier_sense_experiment, summarize
from repro.sim.metrics import empirical_cdf


def bench_fig9_carrier_sense(benchmark):
    result = benchmark.pedantic(
        run_carrier_sense_experiment,
        kwargs={"n_trials": 40, "seed": 0},
        rounds=1,
        iterations=1,
    )
    lines = [summarize(result)]
    for condition in ("silent", "transmitting"):
        for kind in ("raw", "projected"):
            values, _ = empirical_cdf(result.correlations[(condition, kind)])
            if values.size:
                lines.append(
                    f"correlation CDF ({condition}, {kind}): "
                    f"p10={values[int(0.1 * (values.size - 1))]:.2f} "
                    f"median={values[values.size // 2]:.2f} "
                    f"p90={values[int(0.9 * (values.size - 1))]:.2f}"
                )
    print_block("Fig. 9 -- multi-dimensional carrier sense", "\n".join(lines))

    assert result.power_jump_db_with_projection > result.power_jump_db_without_projection + 4.0
    assert (
        result.nondistinguishable_fraction_projected
        <= result.nondistinguishable_fraction_raw
    )
