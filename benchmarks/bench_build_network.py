"""Network-construction and plan-cache benchmarks.

``Network`` construction is tracked under all three draw contracts:

* ``bench_build_network_100`` and ``bench_build_network_200_batched``
  time the v2 ``channel_draws="batched"`` group pipeline (per-pair draw
  order, vectorized math); ``bench_build_network_100_reference`` times
  the kept per-pair loop so the v2 speedup stays visible.  Every batched
  build is asserted bit-identical to the reference in the test suite
  (``tests/sim/test_network_batched_draws.py``).

* ``bench_build_network_200`` and ``bench_build_network_500`` time the
  grouped (v3) contract (``channel_draws="grouped"``): scalars-first
  draws, one tap draw per antenna-shape group, DFT evaluated directly at
  the tracked bins, ChannelBank storage with reciprocal directions as
  views.  The acceptance bar of the v3 contract is ``bench_build_network_200``
  >= 2x faster than the committed v2 ``bench_build_network_200`` baseline
  (0.272 s); ``bench_build_network_500`` is the first tracked number at
  the 500-station tier (124750 pairs).

* The per-simulation plan cache (:class:`repro.mac.plan.PlanCache`)
  memoizes the winner's pre-coder decompositions and measured SNRs by
  contention configuration.  ``bench_nplus_rounds_plan_cache`` times a
  default-window n+ simulation with the cache (the default);
  ``bench_nplus_rounds_no_plan_cache`` recomputes every plan, for the
  comparison.  Both runs assert identical metrics -- the cache is a pure
  speedup.

All entries are tracked in ``BENCH_core.json``; run
``python benchmarks/run_all.py --compare`` (or ``make bench-compare``)
to gate regressions.
"""

from __future__ import annotations

import numpy as np

from repro.sim.network import Network
from repro.sim.runner import SimulationConfig, build_network, run_simulation
from repro.sim.scenarios import scenario_factory

_CONFIG = SimulationConfig(duration_us=100_000.0, n_subcarriers=16)
_SEED = 0

_scenarios: dict = {}


def _scenario(name: str):
    if name not in _scenarios:
        _scenarios[name] = scenario_factory(name)()
    return _scenarios[name]


def _build(name: str, channel_draws: str) -> Network:
    scenario = _scenario(name)
    return Network(
        scenario.stations,
        scenario.pairs,
        np.random.default_rng(_SEED),
        testbed=scenario.make_testbed(),
        n_subcarriers=_CONFIG.n_subcarriers,
        channel_draws=channel_draws,
    )


def bench_build_network_100(benchmark):
    """Batched construction of a 100-station network (4950 channel pairs)."""
    network = benchmark(lambda: _build("dense-lan-100", "batched"))
    assert len(network.stations) == 100


def bench_build_network_200(benchmark):
    """Grouped (v3) construction of a 200-station network (19900 pairs).

    Acceptance bar: >= 2x faster than the committed v2 baseline of this
    entry (0.272 s, ``channel_draws="batched"``), which is tracked on as
    ``bench_build_network_200_batched``.
    """
    network = benchmark(lambda: _build("dense-lan-200", "grouped"))
    assert len(network.stations) == 200


def bench_build_network_200_batched(benchmark):
    """The v2 batched contract at 200 stations, for the comparison."""
    network = benchmark(lambda: _build("dense-lan-200", "batched"))
    assert len(network.stations) == 200


def bench_build_network_500(benchmark):
    """Grouped construction of the 500-station tier (124750 pairs)."""
    network = benchmark(lambda: _build("dense-lan-500", "grouped"))
    assert len(network.stations) == 500


def bench_build_network_100_reference(benchmark):
    """The kept per-pair reference loop at 100 stations.

    Compare with ``bench_build_network_100`` for the construction
    speedup; the acceptance bar is batched >= 3x faster.
    """
    network = benchmark(lambda: _build("dense-lan-100", "per-pair"))
    assert len(network.stations) == 100


_plan_cache_state: dict = {}


def _plan_cache_setup():
    """The saturated dense LAN whose rounds exercise the plan cache."""
    if not _plan_cache_state:
        scenario = scenario_factory("dense-lan-30")()
        config = SimulationConfig(duration_us=100_000.0, n_subcarriers=8)
        network = build_network(scenario, 1, config)
        reference = run_simulation(
            scenario, "n+", seed=1, config=config, network=network, plan_cache=False
        )
        _plan_cache_state.update(
            scenario=scenario,
            config=config,
            network=network,
            reference=reference.to_dict(),
        )
    return _plan_cache_state


def _run_rounds(plan_cache: bool):
    state = _plan_cache_setup()
    metrics = run_simulation(
        state["scenario"],
        "n+",
        seed=1,
        config=state["config"],
        network=state["network"],
        plan_cache=plan_cache,
    )
    # The cache must be a pure speedup: identical metrics either way.
    assert metrics.to_dict() == state["reference"]
    return metrics


def bench_nplus_rounds_plan_cache(benchmark):
    """n+ rounds on dense-lan-30, 100 ms window, plan cache on (default)."""
    metrics = benchmark(lambda: _run_rounds(True))
    assert metrics.elapsed_us >= 100_000.0


def bench_nplus_rounds_no_plan_cache(benchmark):
    """The same rounds recomputing every plan, for the comparison."""
    metrics = benchmark(lambda: _run_rounds(False))
    assert metrics.elapsed_us >= 100_000.0
