"""Network-construction and plan-cache benchmarks.

PR 4 moved the remaining dense-LAN hotspots out of the per-round path:

* ``Network`` construction draws every station pair's channel through
  the batched group pipeline (``channel_draws="batched"``) -- station
  pairs grouped by antenna shape, tap scaling and the 64-point FFT
  computed per group -- instead of one ``testbed.link()`` call per pair.
  The ``bench_build_network_100/200`` entries track the batched path at
  the two dense-LAN tiers; the ``*_reference`` entry times the kept
  per-pair loop at 100 stations so the speedup stays visible (and keeps
  the reference honest).  Every batched build is asserted bit-identical
  to the reference in the test suite (``tests/sim/test_network_batched_draws.py``).

* The per-simulation plan cache (:class:`repro.mac.plan.PlanCache`)
  memoizes the winner's pre-coder decompositions and measured SNRs by
  contention configuration.  ``bench_nplus_rounds_plan_cache`` times a
  default-window n+ simulation with the cache (the default);
  ``bench_nplus_rounds_no_plan_cache`` recomputes every plan, for the
  comparison.  Both runs assert identical metrics -- the cache is a pure
  speedup.

All entries are tracked in ``BENCH_core.json``; run
``python benchmarks/run_all.py --compare`` (or ``make bench-compare``)
to gate regressions.
"""

from __future__ import annotations

import numpy as np

from repro.sim.network import Network
from repro.sim.runner import SimulationConfig, build_network, run_simulation
from repro.sim.scenarios import scenario_factory

_CONFIG = SimulationConfig(duration_us=100_000.0, n_subcarriers=16)
_SEED = 0

_scenarios: dict = {}


def _scenario(name: str):
    if name not in _scenarios:
        _scenarios[name] = scenario_factory(name)()
    return _scenarios[name]


def _build(name: str, channel_draws: str) -> Network:
    scenario = _scenario(name)
    return Network(
        scenario.stations,
        scenario.pairs,
        np.random.default_rng(_SEED),
        testbed=scenario.make_testbed(),
        n_subcarriers=_CONFIG.n_subcarriers,
        channel_draws=channel_draws,
    )


def bench_build_network_100(benchmark):
    """Batched construction of a 100-station network (4950 channel pairs)."""
    network = benchmark(lambda: _build("dense-lan-100", "batched"))
    assert len(network.stations) == 100


def bench_build_network_200(benchmark):
    """Batched construction of a 200-station network (19900 channel pairs)."""
    network = benchmark(lambda: _build("dense-lan-200", "batched"))
    assert len(network.stations) == 200


def bench_build_network_100_reference(benchmark):
    """The kept per-pair reference loop at 100 stations.

    Compare with ``bench_build_network_100`` for the construction
    speedup; the acceptance bar is batched >= 3x faster.
    """
    network = benchmark(lambda: _build("dense-lan-100", "per-pair"))
    assert len(network.stations) == 100


_plan_cache_state: dict = {}


def _plan_cache_setup():
    """The saturated dense LAN whose rounds exercise the plan cache."""
    if not _plan_cache_state:
        scenario = scenario_factory("dense-lan-30")()
        config = SimulationConfig(duration_us=100_000.0, n_subcarriers=8)
        network = build_network(scenario, 1, config)
        reference = run_simulation(
            scenario, "n+", seed=1, config=config, network=network, plan_cache=False
        )
        _plan_cache_state.update(
            scenario=scenario,
            config=config,
            network=network,
            reference=reference.to_dict(),
        )
    return _plan_cache_state


def _run_rounds(plan_cache: bool):
    state = _plan_cache_setup()
    metrics = run_simulation(
        state["scenario"],
        "n+",
        seed=1,
        config=state["config"],
        network=state["network"],
        plan_cache=plan_cache,
    )
    # The cache must be a pure speedup: identical metrics either way.
    assert metrics.to_dict() == state["reference"]
    return metrics


def bench_nplus_rounds_plan_cache(benchmark):
    """n+ rounds on dense-lan-30, 100 ms window, plan cache on (default)."""
    metrics = benchmark(lambda: _run_rounds(True))
    assert metrics.elapsed_us >= 100_000.0


def bench_nplus_rounds_no_plan_cache(benchmark):
    """The same rounds recomputing every plan, for the comparison."""
    metrics = benchmark(lambda: _run_rounds(False))
    assert metrics.elapsed_us >= 100_000.0
