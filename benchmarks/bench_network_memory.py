#!/usr/bin/env python
"""Construction-memory benchmarks: tracemalloc peak bytes per pair.

The ChannelBank stores one stacked tensor per antenna-shape group and
serves every reciprocal direction as a transposed *view*, so network
construction should allocate roughly one ``(n_sub, N, M)`` complex
response per unordered pair -- not two (the pre-bank storage kept a
``.copy()`` per reverse direction).  This module measures that with
:mod:`tracemalloc`: the peak allocated bytes during one ``Network``
construction, absolute and per pair, at the 100/200/500-station
dense-LAN tiers.

Run standalone for a table::

    python benchmarks/bench_network_memory.py
    python benchmarks/bench_network_memory.py --sizes 100,200 --json out.json

``benchmarks/run_all.py`` runs it as a subprocess and tracks the
``mem_build_network_*`` peak bytes in ``BENCH_core.json`` next to the
timing benchmarks, so a memory regression fails ``--compare`` exactly
like a runtime regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: The tiers measured by default, and the draw contract each tier uses
#: in practice (the 500-station scenario declares the grouped contract).
DEFAULT_SIZES = (100, 200, 500)
N_SUBCARRIERS = 16
SEED = 0


def measure(n_stations: int, channel_draws: str | None = None) -> dict:
    """Peak construction bytes of one ``dense-lan-<n_stations>`` network.

    The scenario and testbed are built *before* tracing starts, so the
    measurement covers exactly the ``Network`` construction (placements,
    channel draws, ChannelBank storage).  Returns a dict with
    ``peak_bytes``, ``bytes_per_pair``, ``n_pairs``, ``bank_bytes`` and
    the effective ``channel_draws``.
    """
    import numpy as np

    from repro.sim.network import Network
    from repro.sim.runner import SimulationConfig, effective_channel_draws
    from repro.sim.scenarios import scenario_factory

    scenario = scenario_factory(f"dense-lan-{n_stations}")()
    config = SimulationConfig(
        n_subcarriers=N_SUBCARRIERS, channel_draws=channel_draws
    )
    draws = effective_channel_draws(scenario, config)
    testbed = scenario.make_testbed()
    rng = np.random.default_rng(SEED)

    tracemalloc.start()
    tracemalloc.reset_peak()
    network = Network(
        scenario.stations,
        scenario.pairs,
        rng,
        testbed=testbed,
        n_subcarriers=N_SUBCARRIERS,
        channel_draws=draws,
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    n_pairs = network.channels.n_pairs
    return {
        "n_stations": n_stations,
        "n_pairs": n_pairs,
        "channel_draws": draws,
        "peak_bytes": int(peak),
        "bytes_per_pair": peak / n_pairs if n_pairs else 0.0,
        "bank_bytes": int(network.channels.nbytes),
    }


def run(sizes, channel_draws: str | None = None) -> dict:
    """``{mem_build_network_<n>: measurement}`` for every requested tier.

    ``channel_draws`` forces one contract for every tier (for e.g. a
    batched-vs-grouped memory comparison); ``None`` uses each tier's
    effective contract.
    """
    return {
        f"mem_build_network_{size}": measure(size, channel_draws) for size in sizes
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated station counts (default: 100,200,500)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="also write the results as JSON"
    )
    parser.add_argument(
        "--channel-draws",
        choices=["grouped", "batched", "per-pair"],
        default=None,
        help="force one draw contract for every tier (default: each tier's "
        "effective contract -- batched at 100/200, grouped at 500)",
    )
    args = parser.parse_args(argv)
    sizes = [int(part) for part in args.sizes.split(",") if part]

    results = run(sizes, args.channel_draws)
    header = f"{'benchmark':28s} {'contract':>9s} {'pairs':>8s} {'peak':>10s} {'bytes/pair':>11s}"
    print(header)
    for name, entry in results.items():
        print(
            f"{name:28s} {entry['channel_draws']:>9s} {entry['n_pairs']:>8d} "
            f"{entry['peak_bytes'] / 1e6:>8.1f}MB {entry['bytes_per_pair']:>11.0f}"
        )
    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
