"""Ablation -- the L-threshold admission/power rule (§4).

n+ only lets a node join if its interference at ongoing receivers can be
pushed below L dB above the noise (reducing transmit power if necessary).
This ablation sweeps L and reports, across random joiner/receiver
channels, (a) the average SNR loss inflicted on the ongoing single-antenna
receiver and (b) the average transmit-power penalty paid by the joiner --
the tradeoff that motivates the paper's choice of L = 27 dB.
"""

from __future__ import annotations

import numpy as np
from reporting import print_block

from repro.channel.hardware import HardwareProfile
from repro.channel.models import complex_gaussian
from repro.mac.power_control import admission_power_scale, interference_power_db
from repro.utils.db import db_to_linear, linear_to_db


def _threshold_sweep(thresholds, n_trials: int = 2000, seed: int = 0):
    rng = np.random.default_rng(seed)
    hardware = HardwareProfile()
    results = {}
    for threshold in thresholds:
        victim_losses = []
        power_penalties_db = []
        for _ in range(n_trials):
            wanted_snr_db = rng.uniform(5.0, 25.0)
            unwanted_snr_db = rng.uniform(7.5, 32.5)
            channel = complex_gaussian((1, 2), rng, db_to_linear(unwanted_snr_db))
            level = interference_power_db(channel)
            scale = admission_power_scale([level], threshold_db=threshold)
            power_penalties_db.append(-linear_to_db(scale))
            residual = hardware.residual_interference_power(
                db_to_linear(unwanted_snr_db) * scale, aligned=False
            )
            before = wanted_snr_db
            after = linear_to_db(db_to_linear(wanted_snr_db) / (1.0 + residual))
            victim_losses.append(before - after)
        results[threshold] = (float(np.mean(victim_losses)), float(np.mean(power_penalties_db)))
    return results


def bench_ablation_admission_threshold(benchmark):
    thresholds = [15.0, 21.0, 27.0, 33.0, 39.0]
    results = benchmark.pedantic(
        _threshold_sweep, args=(thresholds,), kwargs={"n_trials": 1500, "seed": 0}, rounds=1, iterations=1
    )
    lines = ["L (dB)   victim SNR loss (dB)   joiner power penalty (dB)"]
    for threshold in thresholds:
        loss, penalty = results[threshold]
        lines.append(f"{threshold:5.1f}    {loss:8.2f}               {penalty:8.2f}")
    lines.append("(the paper picks L = 27 dB: victim loss stays below ~1 dB while the")
    lines.append(" power penalty remains small)")
    print_block("Ablation -- admission threshold L", "\n".join(lines))

    # Victim loss grows with L (up to the point where the rule stops binding)
    # while the joiner's power penalty shrinks with L.
    losses = [results[t][0] for t in thresholds]
    penalties = [results[t][1] for t in thresholds]
    assert losses[0] < losses[2] < losses[-1] + 0.3
    assert all(a >= b - 1e-9 for a, b in zip(penalties, penalties[1:]))
    # At the paper's operating point the victim loss is about a dB.
    assert results[27.0][0] < 1.5
