"""Dense-LAN round-pipeline benchmarks: batched vs per-agent reference.

The batched round pipeline (``repro.sim.runner``, ``pipeline="batched"``)
evaluates the per-round MAC queries -- who has traffic, when does traffic
arrive next, who may join -- as array operations over
:class:`repro.sim.traffic.TrafficStateArrays` instead of one Python call
per agent.  These benchmarks time a default-duration (100 ms) simulation
of the ``dense-lan-100`` scenarios under both pipelines on the *same*
pre-built network, so the measured difference is exactly the round
pipeline (network construction, which is identical either way, is
excluded).  Every run also asserts the two pipelines produce identical
``NetworkMetrics`` -- the batching is a pure speedup, never a behaviour
change.

The ``*_batched`` entries are tracked in ``BENCH_core.json``; run
``python benchmarks/run_all.py --compare`` to gate regressions.
"""

from __future__ import annotations

from repro.sim.runner import SimulationConfig, build_network, run_simulation
from repro.sim.scenarios import scenario_factory

#: The paper-default observation window (SimulationConfig.duration_us).
_CONFIG = SimulationConfig(duration_us=100_000.0, n_subcarriers=8)
_SEED = 1

_networks: dict = {}
_reference_metrics: dict = {}


def _setup(scenario_name: str):
    """Build (once) the scenario, its network and the reference metrics."""
    if scenario_name not in _networks:
        scenario = scenario_factory(scenario_name)()
        network = build_network(scenario, _SEED, _CONFIG)
        reference = run_simulation(
            scenario, "n+", seed=_SEED, config=_CONFIG, network=network,
            pipeline="per-agent",
        )
        _networks[scenario_name] = (scenario, network)
        _reference_metrics[scenario_name] = reference.to_dict()
    return _networks[scenario_name]


def _run(scenario_name: str, pipeline: str):
    scenario, network = _setup(scenario_name)
    metrics = run_simulation(
        scenario, "n+", seed=_SEED, config=_CONFIG, network=network,
        pipeline=pipeline,
    )
    # The pipelines must be interchangeable: identical metrics, bit for bit.
    assert metrics.to_dict() == _reference_metrics[scenario_name]
    return metrics


def bench_dense_lan_100_rounds_batched(benchmark):
    """Batched round pipeline, 100-station saturated LAN, 100 ms window."""
    metrics = benchmark(lambda: _run("dense-lan-100", "batched"))
    assert metrics.elapsed_us >= _CONFIG.duration_us


def bench_dense_lan_100_rounds_per_agent(benchmark):
    """Per-agent reference pipeline on the identical scenario/network.

    Compare with ``bench_dense_lan_100_rounds_batched`` for the round
    pipeline's speedup; this entry is what makes the comparison visible
    in every benchmark run.
    """
    metrics = benchmark(lambda: _run("dense-lan-100", "per-agent"))
    assert metrics.elapsed_us >= _CONFIG.duration_us


def bench_dense_lan_100_bursty_rounds_batched(benchmark):
    """Batched pipeline on the bursty 100-station LAN (joins + idle gaps)."""
    metrics = benchmark(lambda: _run("dense-lan-100-bursty", "batched"))
    assert metrics.elapsed_us >= _CONFIG.duration_us


def bench_dense_lan_100_bursty_rounds_per_agent(benchmark):
    """Per-agent reference on the bursty 100-station LAN."""
    metrics = benchmark(lambda: _run("dense-lan-100-bursty", "per-agent"))
    assert metrics.elapsed_us >= _CONFIG.duration_us
