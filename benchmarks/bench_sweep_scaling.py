#!/usr/bin/env python
"""Serial vs parallel sweep scaling, plus cache-replay timing.

Runs a fig12-style placement sweep (three-pair scenario, 802.11n vs n+)
three ways and reports wall-clock:

1. serial (``workers=1``),
2. parallel (``--workers``, default 4), asserting the metrics are
   byte-identical to the serial run,
3. a repeated parallel invocation against a warm on-disk cache,
   asserting every cell is a hit.

On a machine with >= ``--workers`` usable cores the parallel run is
expected to approach ``workers``-fold speedup (>= 3x at 4 workers); on a
constrained CI container the honest number is printed either way.  Pass
``--require-speedup R`` to make the script exit non-zero below a ratio
(useful as an acceptance gate on real hardware).

The script itself is not tracked in ``BENCH_core.json`` (it is an
orchestration benchmark, not a per-packet hot path), but the module also
carries two tracked ``pytest-benchmark`` functions --
``bench_sweep_cached_replay_store`` and
``bench_sweep_cached_replay_json_cache`` -- that time a fully warm
cache replay through the SQLite results store and the legacy JSON cell
cache.  The pair pins the store's bookkeeping overhead (manifest upsert,
state-machine scan, row loads) against the flat-file baseline it
replaced.

    python benchmarks/bench_sweep_scaling.py
    python benchmarks/bench_sweep_scaling.py --runs 50 --workers 4 --require-speedup 3
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.runner import SimulationConfig  # noqa: E402
from repro.sim.sweep import default_workers, run_sweep  # noqa: E402

# -- tracked cache-replay benchmarks -----------------------------------------
#
# A fig12-sized grid (2 protocols x 50 runs = 100 cells) computed once
# per backend, then replayed from the warm cache inside the benchmark
# loop.  Every replay is pure cache bookkeeping -- no simulation -- so
# the two numbers compare the SQLite store's per-sweep overhead (one
# batched SELECT plus manifest bookkeeping) directly against the legacy
# JSON cell files (one file read per cell).

_REPLAY_CONFIG = SimulationConfig(duration_us=2_000.0, n_subcarriers=8)
_REPLAY_GRID = dict(
    scenario="three-pair", protocols=["802.11n", "n+"], n_runs=50, seed=0
)
_REPLAY_CELLS = _REPLAY_GRID["n_runs"] * len(_REPLAY_GRID["protocols"])

_state: dict = {}


def _warm_cache(backend: str) -> str:
    """Populate (once) a cache directory for ``backend``; return its path."""
    if backend not in _state:
        tmp = tempfile.TemporaryDirectory(prefix=f"bench-replay-{backend}-")
        _state[backend] = tmp  # keep alive: cleaned up at interpreter exit
        grid = _REPLAY_GRID
        run_sweep(
            grid["scenario"],
            grid["protocols"],
            n_runs=grid["n_runs"],
            seed=grid["seed"],
            config=_REPLAY_CONFIG,
            cache_dir=tmp.name,
            cache_backend=backend,
        )
    return _state[backend].name


def _replay(backend: str):
    grid = _REPLAY_GRID
    return run_sweep(
        grid["scenario"],
        grid["protocols"],
        n_runs=grid["n_runs"],
        seed=grid["seed"],
        config=_REPLAY_CONFIG,
        cache_dir=_warm_cache(backend),
        cache_backend=backend,
    )


def bench_sweep_cached_replay_store(benchmark):
    """Warm 20-cell replay through the SQLite results store."""
    result = benchmark(lambda: _replay("sqlite"))
    assert result.cache_misses == 0
    assert result.cache_hits == _REPLAY_CELLS


def bench_sweep_cached_replay_json_cache(benchmark):
    """The same warm replay through the legacy JSON cell cache."""
    result = benchmark(lambda: _replay("json"))
    assert result.cache_misses == 0
    assert result.cache_hits == _REPLAY_CELLS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--runs", type=int, default=50, help="random placements")
    parser.add_argument("--workers", type=int, default=4, help="worker processes")
    parser.add_argument("--scenario", default="three-pair", help="registered scenario")
    parser.add_argument(
        "--duration-ms", type=float, default=20.0, help="simulated time per run"
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="exit non-zero if parallel/serial speedup falls below this ratio",
    )
    args = parser.parse_args(argv)

    config = SimulationConfig(duration_us=args.duration_ms * 1000.0, n_subcarriers=8)
    protocols = ["802.11n", "n+"]
    grid = f"{args.scenario}: {args.runs} placements x {protocols}"
    print(f"sweep grid   : {grid}")
    print(f"usable cores : {default_workers()}")

    start = time.perf_counter()
    serial = run_sweep(
        args.scenario, protocols, n_runs=args.runs, seed=args.seed, config=config, workers=1
    )
    serial_s = time.perf_counter() - start
    print(f"serial       : {serial_s:7.2f} s")

    start = time.perf_counter()
    parallel = run_sweep(
        args.scenario,
        protocols,
        n_runs=args.runs,
        seed=args.seed,
        config=config,
        workers=args.workers,
    )
    parallel_s = time.perf_counter() - start
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"parallel x{args.workers} : {parallel_s:7.2f} s   ({speedup:.2f}x speedup)")

    for protocol in protocols:
        serial_dicts = [m.to_dict() for m in serial.results[protocol]]
        parallel_dicts = [m.to_dict() for m in parallel.results[protocol]]
        assert serial_dicts == parallel_dicts, (
            f"parallel sweep diverged from serial for {protocol}"
        )
    print("parallel metrics are byte-identical to serial")

    with tempfile.TemporaryDirectory() as tmp:
        run_sweep(
            args.scenario,
            protocols,
            n_runs=args.runs,
            seed=args.seed,
            config=config,
            workers=args.workers,
            cache_dir=tmp,
        )
        start = time.perf_counter()
        cached = run_sweep(
            args.scenario,
            protocols,
            n_runs=args.runs,
            seed=args.seed,
            config=config,
            workers=args.workers,
            cache_dir=tmp,
        )
        cached_s = time.perf_counter() - start
        assert cached.cache_misses == 0, "warm cache should satisfy every cell"
        print(
            f"cache replay : {cached_s:7.2f} s   "
            f"({cached.cache_hits} hits, {serial_s / max(cached_s, 1e-9):.0f}x vs serial)"
        )

    if args.require_speedup is not None and speedup < args.require_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.require_speedup:.2f}x "
            f"(usable cores: {default_workers()})"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
