"""Ablation -- per-packet ESNR bitrate selection vs historical rate control
(§3.4, Fig. 7).

When concurrent transmissions come from different nodes, the angle between
the wanted stream and the interference -- and therefore the best bitrate --
changes from packet to packet even if the channels do not.  This ablation
simulates a receiver whose interferer set changes randomly per packet and
compares the throughput of n+'s per-packet ESNR selection against a
conventional history-based controller.
"""

from __future__ import annotations

import numpy as np
from reporting import print_block

from repro.channel.models import complex_gaussian
from repro.mac.bitrate import HistoricalRateController, choose_bitrate
from repro.mimo.decoder import post_projection_snr_db
from repro.phy.esnr import packet_delivery_probability
from repro.utils.db import db_to_linear


def _per_packet_vs_historical(n_packets: int = 2000, seed: int = 0):
    rng = np.random.default_rng(seed)
    # Static wanted channel (2-antenna receiver), 20 dB average SNR.
    h_wanted = complex_gaussian((2, 1), rng, db_to_linear(20.0))
    controller = HistoricalRateController()
    per_packet_bits = 0.0
    historical_bits = 0.0
    packet_bits = 12_000
    for _ in range(n_packets):
        # The set of concurrent transmitters changes per packet: sometimes
        # nobody, sometimes a single-antenna interferer in a random direction.
        if rng.random() < 0.6:
            interference = complex_gaussian((2, 1), rng, db_to_linear(20.0))
        else:
            interference = None
        snrs = list(post_projection_snr_db(h_wanted, interference, noise_power=1.0)) * 8

        # n+: measure on the light-weight RTS, pick per packet.
        mcs = choose_bitrate(snrs, margin_db=1.0)
        if rng.random() < packet_delivery_probability(snrs, mcs, packet_bits):
            per_packet_bits += packet_bits

        # Baseline: history-based selection, updated from outcomes.
        historical_mcs = controller.select()
        delivered = rng.random() < packet_delivery_probability(snrs, historical_mcs, packet_bits)
        controller.record(historical_mcs, delivered)
        if delivered:
            historical_bits += packet_bits
    return per_packet_bits, historical_bits


def bench_ablation_bitrate_selection(benchmark):
    per_packet, historical = benchmark.pedantic(
        _per_packet_vs_historical, kwargs={"n_packets": 2000, "seed": 0}, rounds=1, iterations=1
    )
    improvement = per_packet / max(historical, 1.0)
    body = "\n".join(
        [
            f"delivered bits, per-packet ESNR selection : {per_packet / 1e6:.1f} Mbit",
            f"delivered bits, historical rate control   : {historical / 1e6:.1f} Mbit",
            f"improvement                               : {improvement:.2f}x",
        ]
    )
    print_block("Ablation -- per-packet bitrate selection vs historical control", body)
    assert per_packet > historical
