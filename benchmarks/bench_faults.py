"""Fault-injection benchmarks: faulted rounds and the update kernels.

``bench_faulted_rounds`` times a full faulted simulation (the ``mixed``
profile on ``dense-lan-20-faulty``): episode application, epoch
bumping, the epoch-keyed caches and the loss draws all on the hot path.
``bench_no_fault_overhead`` times the *same* scenario with faults
disabled on the same pre-built network -- the pair bounds what the
fault layer costs when it fires and documents that the no-fault path
carries none of it.  ``bench_channel_bank_update`` isolates the O(slots)
in-place kernels (:meth:`~repro.sim.network.ChannelBank.scale_links` /
:meth:`~repro.sim.network.ChannelBank.update_links`) on a 100-station
bank, the operation every fade edge performs.

Tracked in ``BENCH_core.json``; run ``python benchmarks/run_all.py
--compare`` to gate regressions.
"""

from __future__ import annotations

from repro.sim.runner import SimulationConfig, build_network, run_simulation
from repro.sim.scenarios import scenario_factory

_CONFIG = SimulationConfig(duration_us=50_000.0, n_subcarriers=8)
_NO_FAULT_CONFIG = SimulationConfig(
    duration_us=50_000.0, n_subcarriers=8, fault_profile="none"
)
_SEED = 7

_state: dict = {}


def _setup():
    """Build (once) the faulty scenario and its network."""
    if not _state:
        scenario = scenario_factory("dense-lan-20-faulty")()
        network = build_network(scenario, _SEED, _CONFIG)
        _state["pair"] = (scenario, network)
    return _state["pair"]


def bench_faulted_rounds(benchmark):
    """Mixed fades/losses/churn on a 20-station LAN, 50 ms window."""
    scenario, network = _setup()
    metrics = benchmark(
        lambda: run_simulation(
            scenario, "n+", seed=_SEED, config=_CONFIG, network=network
        )
    )
    assert metrics.elapsed_us > 0
    assert metrics.total_throughput_mbps() > 0.0


def bench_no_fault_overhead(benchmark):
    """The same scenario with faults off: the strict no-op baseline."""
    scenario, network = _setup()
    metrics = benchmark(
        lambda: run_simulation(
            scenario, "n+", seed=_SEED, config=_NO_FAULT_CONFIG, network=network
        )
    )
    assert metrics.elapsed_us > 0


def bench_channel_bank_update(benchmark):
    """One fade edge's worth of kernel work on a 100-station bank.

    Snapshots, scales and restores 10 links in place -- the exact
    sequence a fade start + end performs -- leaving the bank bit-
    identical, so iterations are independent.
    """
    scenario = scenario_factory("dense-lan-100")()
    network = build_network(scenario, _SEED, _CONFIG)
    bank = network.channels
    links = [
        (pair.transmitter.node_id, pair.receivers[0].node_id)
        for pair in scenario.pairs[:10]
    ]

    def fade_and_restore():
        snapshots = bank.snapshot_links(links)
        bank.scale_links(links, 10.0 ** (-20.0 / 20.0), snr_delta_db=-20.0)
        bank.update_links(
            [(tx, rx, resp, snr) for (tx, rx), (resp, snr) in zip(links, snapshots)]
        )

    benchmark(fade_and_restore)
