"""Small reporting helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["print_block"]


def print_block(title: str, body: str) -> None:
    """Print a clearly delimited result block.

    Run the benchmarks with ``-s`` to see these blocks inline; they contain
    the reproduced rows/series of the corresponding paper figure.
    """
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
