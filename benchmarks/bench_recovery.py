"""Recovery-policy benchmarks: what each loss-recovery mode costs.

The three tracked entries run the *same* faulty 50-station scenario on
the same pre-built network, varying only the ``recovery`` parameter of
the ``n+`` spec.  ``recovery="none"`` is the baseline coin-flip path;
``fast-retransmit`` adds the zero-backoff resend bookkeeping to every
NACK; ``erasure`` replaces each overlapped delivery's single coin with
an ``erasure_n``-fragment draw plus the decode accounting.  Tracking all
three keeps the recovery family honest: a policy is supposed to trade
*throughput* for loss resilience, not simulation runtime.

Tracked in ``BENCH_core.json``; run ``python benchmarks/run_all.py
--compare`` to gate regressions.
"""

from __future__ import annotations

from repro.sim.runner import SimulationConfig, build_network, run_simulation
from repro.sim.scenarios import scenario_factory

_CONFIG = SimulationConfig(duration_us=50_000.0, n_subcarriers=8)
_SEED = 7

_state: dict = {}


def _setup():
    """Build (once) the faulty scenario and its network."""
    if not _state:
        scenario = scenario_factory("dense-lan-50-faulty")()
        network = build_network(scenario, _SEED, _CONFIG)
        _state["pair"] = (scenario, network)
    return _state["pair"]


def _run(protocol):
    scenario, network = _setup()
    return run_simulation(
        scenario, protocol, seed=_SEED, config=_CONFIG, network=network
    )


def bench_recovery_none(benchmark):
    """Baseline: exponential backoff + retry-capped requeue."""
    metrics = benchmark(lambda: _run("n+"))
    assert metrics.total_throughput_mbps() > 0.0


def bench_recovery_fast_retransmit(benchmark):
    """Zero-backoff resend on NACKed (channel-loss) frames."""
    metrics = benchmark(lambda: _run("n+[recovery=fast-retransmit]"))
    assert metrics.total_throughput_mbps() > 0.0


def bench_recovery_erasure(benchmark):
    """k-of-n coded bursts with per-delivery fragment draws."""
    metrics = benchmark(lambda: _run("n+[recovery=erasure]"))
    assert metrics.total_throughput_mbps() > 0.0
