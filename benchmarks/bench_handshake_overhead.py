"""Benchmark E8 -- §3.5: overhead of the light-weight handshake.

Paper's reported numbers: the differentially-encoded alignment space fits
in about three OFDM symbols, and the total overhead for a 1500-byte packet
at 18 Mb/s is roughly 4 %.
"""

from __future__ import annotations

from reporting import print_block

from repro.experiments.handshake_overhead import run_handshake_experiment, summarize


def bench_handshake_overhead(benchmark):
    result = benchmark.pedantic(
        run_handshake_experiment, kwargs={"n_channels": 100, "seed": 0}, rounds=1, iterations=1
    )
    print_block("§3.5 -- light-weight handshake overhead", summarize(result))
    assert 1.0 <= result.mean_feedback_symbols <= 4.5
    assert 0.01 < result.overhead_fraction < 0.12
