"""Pytest configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) and prints the corresponding rows/series, so running

    pytest benchmarks/ --benchmark-only -s

produces both timing information and the reproduced numbers.
"""
