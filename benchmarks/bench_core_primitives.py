"""Micro-benchmarks of the core primitives.

These do not correspond to a paper figure; they track the cost of the
operations an n+ node performs per packet (pre-coder computation,
multi-dimensional carrier sense, FEC) so regressions in the hot paths are
visible.
"""

from __future__ import annotations

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.mac.plan import PlannedReceiver, ProtectedReceiver, plan_join
from repro.mimo.carrier_sense import MultiDimensionalCarrierSense
from repro.phy.channel_est import estimate_mimo_channel
from repro.phy.coding import Codec
from repro.phy.preamble import Preamble
from repro.phy.rates import MCS_TABLE
from repro.phy.transceiver import MimoTransmitter, StreamConfig
from repro.utils.bits import random_bits


def bench_plan_join_per_subcarrier(benchmark):
    """Cost of computing a full per-subcarrier join plan (Fig. 5(d) case)."""
    rng = np.random.default_rng(0)
    n_sub = 16

    def channels(n_rx, n_tx):
        return rng.standard_normal((n_sub, n_rx, n_tx)) + 1j * rng.standard_normal(
            (n_sub, n_rx, n_tx)
        )

    u_perp = np.zeros((n_sub, 2, 1), dtype=complex)
    u_perp[:, 0, 0] = 1.0
    protected = [
        ProtectedReceiver(1, 1, 1, channels(1, 3)),
        ProtectedReceiver(3, 2, 1, channels(2, 3), u_perp=u_perp),
    ]
    receivers = [PlannedReceiver(5, 3, 1, channels(3, 3))]

    plan = benchmark(lambda: plan_join(4, 3, protected, receivers))
    assert plan.n_streams == 1


def bench_carrier_sense_projection(benchmark):
    """Cost of projecting and sensing a 500-sample window on 3 antennas."""
    rng = np.random.default_rng(1)
    sensor = MultiDimensionalCarrierSense(3)
    sensor.add_ongoing(rng.standard_normal(3) + 1j * rng.standard_normal(3))
    samples = rng.standard_normal((3, 500)) + 1j * rng.standard_normal((3, 500))

    result = benchmark(lambda: sensor.sense(samples))
    assert result is not None


def bench_estimate_mimo_channel_3x3(benchmark):
    """Cost of estimating a full 3x3 MIMO channel from one preamble (all
    (tx, rx) antenna pairs in one stacked demodulation + least squares)."""
    rng = np.random.default_rng(6)
    preamble = Preamble(n_antennas=3)
    tx_samples = preamble.per_antenna_samples()
    channel = MultipathChannel.random(3, 3, rng, n_taps=4)
    received = channel.apply(tx_samples)

    estimate = benchmark(lambda: estimate_mimo_channel(received, preamble))
    assert estimate.n_rx == 3 and estimate.n_tx == 3


def bench_codec_encode_1500_bytes(benchmark):
    """FEC encoding cost of a 1500-byte packet at 16-QAM rate 3/4."""
    rng = np.random.default_rng(2)
    codec = Codec(MCS_TABLE[5])
    bits = random_bits(12_000, rng)

    coded = benchmark(lambda: codec.encode(bits))
    assert coded.size > 0


def bench_codec_decode_1500_bytes(benchmark):
    """Viterbi decoding cost of a 1500-byte packet (the receive hot path)."""
    rng = np.random.default_rng(3)
    codec = Codec(MCS_TABLE[5])
    bits = random_bits(12_000, rng)
    coded = codec.encode(bits).astype(float)

    decoded = benchmark(lambda: codec.decode(coded, bits.size))
    assert np.array_equal(decoded, bits)


def bench_viterbi_soft_decode_1500_bytes(benchmark):
    """Soft-decision decoding cost of a 1500-byte packet (noisy LLR input)."""
    rng = np.random.default_rng(4)
    codec = Codec(MCS_TABLE[5])
    bits = random_bits(12_000, rng)
    coded = codec.encode(bits).astype(float)
    llrs = (1.0 - 2.0 * coded) * 4.0 + rng.normal(0.0, 1.0, coded.size)

    decoded = benchmark(lambda: codec.decode(llrs, bits.size, soft=True))
    assert decoded.size == bits.size


def bench_build_frame_precoded(benchmark):
    """Cost of building a 2-stream frame with per-subcarrier pre-coders
    (the n+ transmit hot path, §4 "Multipath")."""
    rng = np.random.default_rng(5)
    n_antennas = 3
    transmitter = MimoTransmitter(n_antennas)
    fft_size = transmitter.config.fft_size
    streams = [
        StreamConfig(
            bits=random_bits(2_000, rng),
            mcs=MCS_TABLE[3],
            precoder=rng.standard_normal((fft_size, n_antennas))
            + 1j * rng.standard_normal((fft_size, n_antennas)),
            stream_id=index,
        )
        for index in range(2)
    ]

    samples, layout = benchmark(lambda: transmitter.build_frame(streams))
    assert samples.shape[0] == n_antennas
    assert layout.n_streams == 2
