#!/usr/bin/env python
"""A heterogeneous LAN: different antenna counts at transmitters and
receivers (Fig. 4 / Fig. 13).

A single-antenna client c1 uploads to a 2-antenna AP1 while a 3-antenna
AP2 has downlink traffic for two 2-antenna clients.  The example runs the
same random channel realisations under three MACs -- today's 802.11n,
multi-user beamforming, and n+ -- and prints the per-flow and total
throughputs plus the gain CD summary that Fig. 13 reports.

Run it with::

    python examples/heterogeneous_lan.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.report import format_cdf_summary, format_table
from repro.sim.runner import SimulationConfig, run_many
from repro.sim.scenarios import heterogeneous_ap_scenario

#: Set REPRO_QUICK=1 to shrink the sweep for smoke testing.
QUICK = bool(os.environ.get("REPRO_QUICK"))

N_RUNS = 2 if QUICK else 5
PROTOCOLS = ("802.11n", "beamforming", "n+")


def main() -> None:
    config = SimulationConfig(duration_us=20_000.0 if QUICK else 80_000.0, n_subcarriers=8)
    results = run_many(
        heterogeneous_ap_scenario, list(PROTOCOLS), n_runs=N_RUNS, seed=2, config=config
    )

    rows = []
    for protocol in PROTOCOLS:
        runs = results[protocol]
        total = np.mean([m.total_throughput_mbps() for m in runs])
        uplink = np.mean([m.throughput_mbps("c1->AP1") for m in runs])
        downlink = np.mean([m.throughput_mbps("AP2->c2+c3") for m in runs])
        rows.append(
            [protocol, f"{uplink:.1f}", f"{downlink:.1f}", f"{total:.1f}"]
        )
    print("Average throughput over", N_RUNS, "random placements (Mb/s):")
    print(format_table(["protocol", "c1->AP1 uplink", "AP2 downlink", "total"], rows))
    totals = {
        protocol: np.mean([m.total_throughput_mbps() for m in results[protocol]])
        for protocol in PROTOCOLS
    }
    assert all(value > 0.0 for value in totals.values()), "every protocol should deliver traffic"

    print("\nPer-run gain of n+ (the quantity plotted in Fig. 13):")
    for baseline in ("802.11n", "beamforming"):
        gains = [
            results["n+"][i].total_throughput_mbps()
            / max(results[baseline][i].total_throughput_mbps(), 1e-9)
            for i in range(N_RUNS)
        ]
        print(format_cdf_summary(f"total gain vs {baseline}", gains))


if __name__ == "__main__":
    main()
