#!/usr/bin/env python
"""Quickstart: the building blocks of 802.11n+ in five minutes.

The script walks through the paper's Fig. 2 example end to end:

1. a single-antenna pair (tx1 -> rx1) is already transmitting;
2. a 2-antenna transmitter (tx2) computes a pre-coding vector that *nulls*
   its signal at rx1, so it can transmit concurrently without harming the
   ongoing reception;
3. rx2 decodes tx2's stream by projecting out tx1's interference;
4. finally, a short MAC-level simulation compares n+ against plain 802.11n
   on the full three-pair topology of Fig. 3.

Run it with::

    python examples/quickstart.py

Every step asserts its own claim, so the script doubles as a headless
smoke test (the suite runs it with ``REPRO_QUICK=1``, which shrinks the
simulated durations).
"""

from __future__ import annotations

import os

import numpy as np

#: Set REPRO_QUICK=1 to shrink the run for smoke testing.
QUICK = bool(os.environ.get("REPRO_QUICK"))

from repro.channel.models import complex_gaussian
from repro.mimo.carrier_sense import MultiDimensionalCarrierSense
from repro.mimo.decoder import post_projection_snr_db, project_and_decode
from repro.mimo.precoder import ReceiverConstraint, compute_precoders
from repro.sim.runner import SimulationConfig, run_simulation
from repro.sim.scenarios import three_pair_scenario
from repro.utils.db import db_to_linear, linear_to_db


def nulling_example(rng: np.random.Generator) -> None:
    print("=" * 70)
    print("Step 1-3: interference nulling and projection decoding (Fig. 2)")
    print("=" * 70)

    # Channels (20 dB links): tx2's two antennas to rx1, and to rx2's two antennas.
    h_tx2_rx1 = complex_gaussian((1, 2), rng, db_to_linear(20.0))
    h_tx2_rx2 = complex_gaussian((2, 2), rng, db_to_linear(20.0))
    h_tx1_rx2 = complex_gaussian((2, 1), rng, db_to_linear(20.0))

    # tx2 nulls at rx1 (Claim 3.3): one pre-coding vector in the null space.
    precoder = compute_precoders(2, [ReceiverConstraint(channel=h_tx2_rx1)])[0]
    leak_at_rx1 = np.abs(h_tx2_rx1 @ precoder)[0]
    print(f"interference tx2 leaves at rx1 : {linear_to_db(leak_at_rx1 ** 2):7.1f} dB (ideal: -inf)")
    assert leak_at_rx1**2 < 1e-12, "nulling should cancel tx2 at rx1 to numerical precision"

    # rx2 decodes tx2's symbols by projecting out tx1's interference.
    n_symbols = 500 if QUICK else 2000
    p = complex_gaussian(n_symbols, rng, 1.0)  # tx1's symbols
    q = complex_gaussian(n_symbols, rng, 1.0)  # tx2's symbols
    noise = complex_gaussian((2, n_symbols), rng, 1e-2)
    received = (
        h_tx1_rx2 @ p.reshape(1, -1)
        + (h_tx2_rx2 @ precoder).reshape(2, 1) @ q.reshape(1, -1)
        + noise
    )
    decoded = project_and_decode(received, (h_tx2_rx2 @ precoder).reshape(2, 1), h_tx1_rx2)
    error = float(np.mean(np.abs(decoded - q) ** 2))
    snr = post_projection_snr_db((h_tx2_rx2 @ precoder).reshape(2, 1), h_tx1_rx2, 1e-2)[0]
    print(f"rx2 post-projection SNR        : {snr:7.1f} dB")
    print(f"rx2 symbol error power         : {error:7.4f} (unit-power symbols)")
    assert error < 0.5, "projection decoding should recover tx2's unit-power symbols"


def carrier_sense_example(rng: np.random.Generator) -> None:
    print()
    print("=" * 70)
    print("Step 4: multi-dimensional carrier sense (Fig. 6)")
    print("=" * 70)

    sensor = MultiDimensionalCarrierSense(n_antennas=3)
    h_ongoing = complex_gaussian(3, rng, db_to_linear(20.0))
    sensor.add_ongoing(h_ongoing)

    ongoing_only = np.outer(h_ongoing, complex_gaussian(500, rng, 1.0))
    noise = complex_gaussian((3, 500), rng, 1.0)
    raw_db = linear_to_db(np.mean(np.abs(ongoing_only) ** 2))
    projected_db = sensor.sense_power_db(ongoing_only + noise)
    print(f"raw power on the medium        : {raw_db:7.1f} dB")
    print(f"power after projection         : {projected_db:7.1f} dB")
    print("-> the second degree of freedom looks idle, so a 2+ antenna node may contend")
    assert projected_db < raw_db - 10.0, "projection should hide the ongoing transmission"


def mac_comparison(rng: np.random.Generator) -> None:
    print()
    print("=" * 70)
    print("Step 5: n+ vs 802.11n on the three-pair topology (Fig. 3)")
    print("=" * 70)

    duration = 20_000.0 if QUICK else 60_000.0
    config = SimulationConfig(duration_us=duration, n_subcarriers=8)
    totals = {}
    for protocol in ("802.11n", "n+"):
        metrics = run_simulation(three_pair_scenario(), protocol, seed=7, config=config)
        totals[protocol] = metrics.total_throughput_mbps()
        per_pair = "  ".join(
            f"{name}: {value:5.1f}" for name, value in metrics.per_link_throughputs().items()
        )
        print(f"{protocol:9s} total {metrics.total_throughput_mbps():5.1f} Mb/s   ({per_pair})")
    assert all(value > 0.0 for value in totals.values()), "both protocols should deliver traffic"


def main() -> None:
    rng = np.random.default_rng(0)
    nulling_example(rng)
    carrier_sense_example(rng)
    mac_comparison(rng)


if __name__ == "__main__":
    main()
