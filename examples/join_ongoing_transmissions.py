#!/usr/bin/env python
"""Walk through the four contention outcomes of Fig. 5.

The three-pair topology of Fig. 3 (1-, 2- and 3-antenna pairs) can resolve
its contention in four qualitatively different ways, shown in Fig. 5(a)-(d)
of the paper.  This example drives the MAC agents by hand through each of
them and prints, for every transmission: how many streams it uses, which
ongoing receivers it protects (and whether by nulling or alignment), the
bitrate its receiver selects, and the resulting post-projection SNR.

Run it with::

    python examples/join_ongoing_transmissions.py
"""

from __future__ import annotations

import numpy as np

from repro.phy.esnr import esnr_for_modulation
from repro.sim.link_abstraction import receiver_stream_snrs
from repro.sim.medium import Medium
from repro.sim.network import Network
from repro.sim.runner import mac_factory
from repro.sim.scenarios import three_pair_scenario


def describe_streams(network, medium, label):
    print(f"\n--- {label} ---")
    streams = medium.active_streams
    by_transmitter = {}
    for stream in streams:
        by_transmitter.setdefault(stream.transmitter_id, []).append(stream)
    for transmitter_id, group in by_transmitter.items():
        name = network.station(transmitter_id).name
        receiver = network.station(group[0].receiver_id).name
        protections = []
        for receiver_id, strategy in group[0].protected_receivers.items():
            protections.append(f"{network.station(receiver_id).name} ({strategy.value})")
        protects = ", ".join(protections) if protections else "nobody (first winner)"
        snrs = receiver_stream_snrs(network, group[0].receiver_id, group, streams)
        mean_snr = np.mean([np.mean(s) for s in snrs.values()])
        esnr = esnr_for_modulation(
            np.concatenate(list(snrs.values())), group[0].mcs.modulation
        )
        print(
            f"  {name} -> {receiver}: {len(group)} stream(s), MCS {group[0].mcs.index}, "
            f"protects {protects}"
        )
        print(
            f"      post-projection SNR {mean_snr:5.1f} dB, effective SNR {esnr:5.1f} dB, "
            f"payload {sum(s.payload_bits for s in group)} bits"
        )


def build_agents(network, rng):
    NPlus = mac_factory("n+")
    agents = {}
    for pair in network.pairs:
        agent = NPlus(pair, network, rng)
        agent.refill(0.0)
        agents[pair.transmitter.node_id] = agent
    return agents


def scenario_a(network, agents):
    """Fig. 5(a): tx3 wins and uses all three degrees of freedom."""
    medium = Medium()
    medium.add_streams(agents[4].plan_initial(100.0, medium))
    assert medium.used_degrees_of_freedom == 3, "tx3 alone should use all three DoF"
    describe_streams(network, medium, "Fig. 5(a): tx3-rx3 wins alone, three streams")


def scenario_b(network, agents):
    """Fig. 5(b): tx2 wins with two streams; tx3 joins with one."""
    medium = Medium()
    medium.add_streams(agents[2].plan_initial(100.0, medium))
    join = agents[4].plan_join(400.0, medium)
    if join:
        medium.add_streams(join)
    describe_streams(network, medium, "Fig. 5(b): tx2-rx2 wins, tx3 joins the third DoF")


def scenario_c(network, agents):
    """Fig. 5(c): tx1 wins; tx3 joins with two streams."""
    medium = Medium()
    medium.add_streams(agents[0].plan_initial(100.0, medium))
    join = agents[4].plan_join(400.0, medium)
    if join:
        medium.add_streams(join)
    describe_streams(network, medium, "Fig. 5(c): tx1-rx1 wins, tx3 adds two streams")


def scenario_d(network, agents):
    """Fig. 5(d): tx1, then tx2, then tx3 -- one stream each."""
    medium = Medium()
    medium.add_streams(agents[0].plan_initial(100.0, medium))
    join2 = agents[2].plan_join(400.0, medium)
    if join2:
        medium.add_streams(join2)
    join3 = agents[4].plan_join(700.0, medium)
    if join3:
        medium.add_streams(join3)
    assert medium.used_degrees_of_freedom >= 1, "at least the first winner is on the air"
    describe_streams(network, medium, "Fig. 5(d): all three links share the medium")


def main() -> None:
    rng = np.random.default_rng(11)
    scenario = three_pair_scenario()
    network = Network(scenario.stations, scenario.pairs, rng, n_subcarriers=16)
    print("Channel realisation:")
    print(network.describe())
    agents = build_agents(network, rng)
    scenario_a(network, agents)
    scenario_b(network, agents)
    scenario_c(network, agents)
    scenario_d(network, agents)


if __name__ == "__main__":
    main()
