#!/usr/bin/env python
"""Sample-level demo of multi-dimensional carrier sense (Fig. 9).

A single-antenna tx1 occupies the medium; a much weaker 2-antenna tx2
starts 25 OFDM symbols later.  A 3-antenna node senses the medium and
prints the per-symbol power profile with and without projecting out tx1,
plus the preamble-correlation statistics at low SNR -- the two components
of 802.11 carrier sense examined in §6.1.

Run it with::

    python examples/carrier_sense_demo.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.fig9_carrier_sense import run_carrier_sense_experiment, summarize
from repro.sim.metrics import empirical_cdf

#: Set REPRO_QUICK=1 to shrink the run for smoke testing.
QUICK = bool(os.environ.get("REPRO_QUICK"))


def ascii_plot(values, width: int = 60, label: str = "") -> None:
    """Print a crude horizontal-bar plot of a dB power profile."""
    values = np.asarray(values)
    low, high = values.min(), values.max()
    span = max(high - low, 1e-9)
    print(label)
    for index, value in enumerate(values):
        bar = "#" * int((value - low) / span * width)
        print(f"  symbol {index:3d} {value:7.1f} dB |{bar}")


def main() -> None:
    result = run_carrier_sense_experiment(n_trials=8 if QUICK else 25, seed=3)
    print(summarize(result))
    assert (
        result.power_jump_db_with_projection
        > result.power_jump_db_without_projection + 3.0
    ), "projecting out tx1 should reveal tx2's arrival"

    print("\nCorrelation CDFs at low SNR (tx2 at ~3 dB):")
    for kind in ("raw", "projected"):
        for condition in ("silent", "transmitting"):
            values, _ = empirical_cdf(result.correlations[(condition, kind)])
            median = values[values.size // 2] if values.size else float("nan")
            print(f"  {kind:9s} / tx2 {condition:12s}: median correlation {median:.2f}")

    print(
        "\nInterpretation: without projection the weak tx2 preamble is buried in "
        "tx1's signal, so its correlation values overlap the silent case; after "
        "projecting out tx1 the two cases separate and the node can contend for "
        "the second degree of freedom."
    )


if __name__ == "__main__":
    main()
