#!/usr/bin/env python
"""Bursty (non-saturated) traffic under n+.

One of the paper's motivations for keeping the protocol fully distributed
and random-access is that wireless LAN traffic is bursty: nodes should be
able to grab the medium (or a spare degree of freedom) whenever a packet
arrives, without any coordinator or schedule.  This example replaces the
saturated sources of the throughput experiments with Poisson arrivals
(``SimulationConfig.packet_rate_pps``) and sweeps the offered load:

* with light offered load, both 802.11n and n+ deliver essentially all of
  it (the medium is mostly idle), and
* as the offered load grows, 802.11n saturates first while n+ keeps
  delivering by packing concurrent streams onto the medium.

Run it with::

    python examples/bursty_traffic.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.report import format_table
from repro.sim.runner import SimulationConfig, run_simulation
from repro.sim.scenarios import three_pair_scenario

#: Set REPRO_QUICK=1 to shrink the sweep for smoke testing.
QUICK = bool(os.environ.get("REPRO_QUICK"))

#: Per-flow Poisson arrival rates to sweep (packets per second of 1500 B).
RATES_PPS = (50, 400) if QUICK else (50, 150, 400, 900)

#: Simulated time per run.
DURATION_US = 30_000.0 if QUICK else 80_000.0

#: Seeds averaged per (protocol, rate) cell.
SEEDS = (5,) if QUICK else (5, 6, 7)


def delivered_throughput(protocol: str, rate_pps: float, seeds=SEEDS) -> float:
    """Average delivered throughput (Mb/s) for one protocol at one load."""
    config = SimulationConfig(
        duration_us=DURATION_US,
        n_subcarriers=8,
        packet_rate_pps=float(rate_pps),
    )
    totals = [
        run_simulation(three_pair_scenario(), protocol, seed=seed, config=config).total_throughput_mbps()
        for seed in seeds
    ]
    return float(np.mean(totals))


def main() -> None:
    rows = []
    delivered = {}
    for rate_pps in RATES_PPS:
        offered_mbps = 3 * rate_pps * 12_000 / 1e6  # three flows of 1500-byte packets
        row = [f"{offered_mbps:.1f}"]
        for protocol in ("802.11n", "n+"):
            delivered[(protocol, rate_pps)] = delivered_throughput(protocol, rate_pps)
            row.append(f"{delivered[(protocol, rate_pps)]:.1f}")
        rows.append(row)

    print("Offered vs delivered throughput (Mb/s), three-pair scenario, Poisson arrivals:")
    print(format_table(["offered (all flows)", "802.11n delivers", "n+ delivers"], rows))
    assert all(value > 0.0 for value in delivered.values()), "every load level should deliver traffic"
    heaviest = max(RATES_PPS)
    assert (
        delivered[("n+", heaviest)] >= 0.8 * delivered[("802.11n", heaviest)]
    ), "n+ should at least keep up with 802.11n under heavy load"
    print(
        "\nAt light load both protocols keep up with the offered load and n+ behaves "
        "exactly like 802.11n (packets rarely overlap, so there is nothing to join). "
        "As the load grows the medium saturates and n+ pulls ahead by packing "
        "concurrent streams; with fully backlogged queues the gap widens to the "
        "~1.5-2x of Fig. 12 (see examples/quickstart.py and the Fig. 12 benchmark)."
    )


if __name__ == "__main__":
    main()
